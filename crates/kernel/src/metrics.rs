//! Time-resolved metrics registry and host-time profiler.
//!
//! The paper's design-flow argument is that a communication architecture is
//! *chosen from observed communication behavior* — bus contention, wait
//! cycles, utilization — across abstraction levels. End-of-run scalars
//! ([`BusStats`-style](crate::stats) totals) say *how much*; this module says
//! *when*: every instrumented resource becomes a **time series** bucketed by
//! a fixed simulated-time window.
//!
//! Two independent, atomically-gated recorders live here:
//!
//! * [`MetricsShared`] — counters, gauges, busy-spans and power-of-two
//!   histograms keyed by `(family, resource)`, sampled into sim-time
//!   windows. Because windows are a pure function of *simulated* time, the
//!   recorded series are bit-identical between serial and parallel sweeps.
//! * [`HostProfiler`] — wall-clock attribution of kernel phases
//!   (evaluate / update / delta-notify / time-advance) and per-process
//!   dispatch time, exported as folded stacks for flamegraph rendering.
//!
//! Both follow the [`TxnShared`](crate::txn::TxnShared) discipline: when
//! disabled (the default) every instrumented operation costs exactly one
//! relaxed atomic load.
//!
//! Exports: [`MetricsSnapshot::to_prometheus`] (text exposition format),
//! [`MetricsSnapshot::to_timeseries_csv`] (one row per window), and
//! [`HostProfile::to_folded`] (Brendan Gregg's folded-stack format).

use std::borrow::Cow;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crate::stats::Histogram;
use crate::time::{SimDur, SimTime};

/// Escapes one CSV field per RFC 4180: fields containing a comma, double
/// quote, CR or LF are wrapped in double quotes with embedded quotes
/// doubled. Plain fields are returned borrowed (no allocation).
///
/// ```
/// use shiptlm_kernel::metrics::csv_escape;
/// assert_eq!(csv_escape("plain"), "plain");
/// assert_eq!(csv_escape("a,b"), "\"a,b\"");
/// assert_eq!(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
/// ```
pub fn csv_escape(field: &str) -> Cow<'_, str> {
    if !field.contains([',', '"', '\n', '\r']) {
        return Cow::Borrowed(field);
    }
    let mut out = String::with_capacity(field.len() + 2);
    out.push('"');
    for c in field.chars() {
        if c == '"' {
            out.push('"');
        }
        out.push(c);
    }
    out.push('"');
    Cow::Owned(out)
}

/// Per-window aggregate of a gauge (sampled value, e.g. queue depth).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GaugeWindow {
    /// Smallest sampled value in the window.
    pub min: u64,
    /// Largest sampled value in the window.
    pub max: u64,
    /// Last sampled value in the window (in record order).
    pub last: u64,
    /// Number of samples in the window.
    pub samples: u64,
}

/// The samples of one `(family, resource)` series.
#[derive(Debug, Clone, PartialEq)]
pub enum SeriesData {
    /// A monotonically increasing count (messages, bytes, doorbells).
    Counter {
        /// Sum over the whole run.
        total: u64,
        /// Per-window increments, keyed by window index.
        windows: BTreeMap<u64, u64>,
    },
    /// A sampled instantaneous value (queue depth, mailbox occupancy).
    Gauge {
        /// Per-window min/max/last, keyed by window index.
        windows: BTreeMap<u64, GaugeWindow>,
    },
    /// Accumulated busy time (bus occupancy, blocked time), apportioned
    /// across the windows a span overlaps.
    Span {
        /// Total busy time over the whole run.
        total: SimDur,
        /// Busy picoseconds per window, keyed by window index.
        windows: BTreeMap<u64, u64>,
    },
    /// A power-of-two bucketed distribution (not windowed).
    Histo(Box<Histogram>),
}

#[derive(Debug, Default)]
struct MetricsInner {
    window_ps: u64,
    series: BTreeMap<(&'static str, Arc<str>), SeriesData>,
}

/// The shared, atomically-gated metrics registry owned by the kernel.
///
/// Disabled by default; every `counter_add` / `gauge_set` / `span_record` /
/// `observe` call first performs one relaxed atomic load and returns
/// immediately when disabled.
#[derive(Debug, Default)]
pub struct MetricsShared {
    enabled: AtomicBool,
    inner: Mutex<MetricsInner>,
}

impl MetricsShared {
    /// Creates a disabled registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Enables recording with the given sampling window, discarding any
    /// previously recorded series. A zero window is clamped to one
    /// picosecond.
    pub fn enable(&self, window: SimDur) {
        let mut g = self.lock();
        g.window_ps = window.as_ps().max(1);
        g.series.clear();
        drop(g);
        self.enabled.store(true, Ordering::Release);
    }

    /// Stops recording; already recorded series remain queryable.
    pub fn disable(&self) {
        self.enabled.store(false, Ordering::Release);
    }

    /// One relaxed load: the instrumented-operation fast path.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, MetricsInner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Adds `value` to the counter series `family{resource}` in the window
    /// containing `at`.
    pub fn counter_add(&self, family: &'static str, resource: &Arc<str>, value: u64, at: SimTime) {
        if !self.is_enabled() {
            return;
        }
        let mut g = self.lock();
        let idx = at.as_ps() / g.window_ps;
        match g
            .series
            .entry((family, Arc::clone(resource)))
            .or_insert_with(|| SeriesData::Counter {
                total: 0,
                windows: BTreeMap::new(),
            }) {
            SeriesData::Counter { total, windows } => {
                *total += value;
                *windows.entry(idx).or_insert(0) += value;
            }
            other => debug_assert!(false, "family {family:?} is not a counter: {other:?}"),
        }
    }

    /// Samples the gauge series `family{resource}` at `at`.
    pub fn gauge_set(&self, family: &'static str, resource: &Arc<str>, value: u64, at: SimTime) {
        if !self.is_enabled() {
            return;
        }
        let mut g = self.lock();
        let idx = at.as_ps() / g.window_ps;
        match g
            .series
            .entry((family, Arc::clone(resource)))
            .or_insert_with(|| SeriesData::Gauge {
                windows: BTreeMap::new(),
            }) {
            SeriesData::Gauge { windows } => {
                let w = windows.entry(idx).or_insert(GaugeWindow {
                    min: value,
                    max: value,
                    last: value,
                    samples: 0,
                });
                w.min = w.min.min(value);
                w.max = w.max.max(value);
                w.last = value;
                w.samples += 1;
            }
            other => debug_assert!(false, "family {family:?} is not a gauge: {other:?}"),
        }
    }

    /// Accumulates the busy span `[start, end)` into `family{resource}`,
    /// apportioned by picosecond overlap across every window it crosses.
    /// Zero-length spans are ignored.
    pub fn span_record(
        &self,
        family: &'static str,
        resource: &Arc<str>,
        start: SimTime,
        end: SimTime,
    ) {
        if !self.is_enabled() || end <= start {
            return;
        }
        let mut g = self.lock();
        let w = g.window_ps;
        match g
            .series
            .entry((family, Arc::clone(resource)))
            .or_insert_with(|| SeriesData::Span {
                total: SimDur::ZERO,
                windows: BTreeMap::new(),
            }) {
            SeriesData::Span { total, windows } => {
                *total += end.since(start);
                let end_ps = end.as_ps();
                let mut t = start.as_ps();
                while t < end_ps {
                    let idx = t / w;
                    let window_end = (idx + 1).saturating_mul(w);
                    let seg = end_ps.min(window_end) - t;
                    *windows.entry(idx).or_insert(0) += seg;
                    t = window_end;
                }
            }
            other => debug_assert!(false, "family {family:?} is not a span: {other:?}"),
        }
    }

    /// Records one sample into the (un-windowed) histogram series
    /// `family{resource}`.
    pub fn observe(&self, family: &'static str, resource: &Arc<str>, value: u64) {
        if !self.is_enabled() {
            return;
        }
        let mut g = self.lock();
        match g
            .series
            .entry((family, Arc::clone(resource)))
            .or_insert_with(|| SeriesData::Histo(Box::default()))
        {
            SeriesData::Histo(h) => h.record(value),
            other => debug_assert!(false, "family {family:?} is not a histogram: {other:?}"),
        }
    }

    /// Clones the recorded series out, deterministically ordered by
    /// `(family, resource)`.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let g = self.lock();
        MetricsSnapshot {
            window: SimDur::ps(g.window_ps.max(1)),
            series: g
                .series
                .iter()
                .map(|((family, resource), data)| MetricSeries {
                    family,
                    resource: Arc::clone(resource),
                    data: data.clone(),
                })
                .collect(),
        }
    }
}

/// One `(family, resource)` time series in a [`MetricsSnapshot`].
#[derive(Debug, Clone, PartialEq)]
pub struct MetricSeries {
    /// Metric family, e.g. `"bus.busy"` or `"ship.bytes"`.
    pub family: &'static str,
    /// The instrumented resource (channel, bus, adapter label).
    pub resource: Arc<str>,
    /// The recorded samples.
    pub data: SeriesData,
}

/// A point-in-time copy of every recorded series, with exporters.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    /// The sampling window all series were bucketed by.
    pub window: SimDur,
    /// All series, sorted by `(family, resource)`.
    pub series: Vec<MetricSeries>,
}

/// Maps a metric family to a Prometheus metric name:
/// `bus.busy` → `shiptlm_bus_busy`.
///
/// Public so out-of-kernel exporters (e.g. the gateway's `/metrics`
/// endpoint) render names identically to [`MetricsSnapshot::to_prometheus`].
pub fn prom_name(family: &str) -> String {
    let mut out = String::with_capacity(family.len() + 8);
    out.push_str("shiptlm_");
    for c in family.chars() {
        out.push(if c.is_ascii_alphanumeric() { c } else { '_' });
    }
    out
}

/// Escapes a Prometheus label value per the text 0.0.4 exposition format:
/// backslash → `\\`, double quote → `\"`, newline → `\n`.
///
/// Label values are otherwise emitted verbatim — including `}`, which is
/// legal inside a quoted value. Public so exporters that surface
/// *untrusted* label values (the gateway exposes user-supplied model names)
/// share one escaping implementation.
pub fn prom_label(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

impl MetricsSnapshot {
    /// `true` when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.series.is_empty()
    }

    /// Looks up one series by family and resource name.
    pub fn find(&self, family: &str, resource: &str) -> Option<&MetricSeries> {
        self.series
            .iter()
            .find(|s| s.family == family && &*s.resource == resource)
    }

    /// Total of a counter series, zero when absent.
    pub fn counter_total(&self, family: &str, resource: &str) -> u64 {
        match self.find(family, resource).map(|s| &s.data) {
            Some(SeriesData::Counter { total, .. }) => *total,
            _ => 0,
        }
    }

    /// Per-window busy fraction (0.0..=1.0) of a span series, as
    /// `(window_start, fraction)` pairs. Empty when the series is absent.
    pub fn busy_fractions(&self, family: &str, resource: &str) -> Vec<(SimTime, f64)> {
        let w = self.window.as_ps().max(1);
        match self.find(family, resource).map(|s| &s.data) {
            Some(SeriesData::Span { windows, .. }) => windows
                .iter()
                .map(|(idx, busy)| (SimTime::from_ps(idx * w), *busy as f64 / w as f64))
                .collect(),
            _ => Vec::new(),
        }
    }

    /// Renders the snapshot in the Prometheus text exposition format
    /// (version 0.0.4): `# TYPE` headers, `_total` counters,
    /// `_bucket{le=...}` / `_sum` / `_count` histograms.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        let mut last_header = String::new();
        for s in &self.series {
            let base = prom_name(s.family);
            let label = prom_label(&s.resource);
            match &s.data {
                SeriesData::Counter { total, .. } => {
                    let name = format!("{base}_total");
                    if last_header != name {
                        let _ = writeln!(out, "# TYPE {name} counter");
                        last_header = name.clone();
                    }
                    let _ = writeln!(out, "{name}{{resource=\"{label}\"}} {total}");
                }
                SeriesData::Gauge { windows } => {
                    if last_header != base {
                        let _ = writeln!(out, "# TYPE {base} gauge");
                        last_header = base.clone();
                    }
                    let last = windows.values().next_back().map_or(0, |w| w.last);
                    let _ = writeln!(out, "{base}{{resource=\"{label}\"}} {last}");
                }
                SeriesData::Span { total, .. } => {
                    let name = format!("{base}_ps_total");
                    if last_header != name {
                        let _ = writeln!(out, "# TYPE {name} counter");
                        last_header = name.clone();
                    }
                    let _ = writeln!(out, "{name}{{resource=\"{label}\"}} {}", total.as_ps());
                }
                SeriesData::Histo(h) => {
                    if last_header != base {
                        let _ = writeln!(out, "# TYPE {base} histogram");
                        last_header = base.clone();
                    }
                    let mut cumulative = 0;
                    for (lower, count) in h.iter() {
                        cumulative += count;
                        // Bucket k holds [2^k, 2^(k+1)); the inclusive upper
                        // bound for `le` is 2^(k+1) - 1 (bucket 0 holds 0..=1).
                        let le = if lower == 0 { 1 } else { lower * 2 - 1 };
                        let _ = writeln!(
                            out,
                            "{base}_bucket{{resource=\"{label}\",le=\"{le}\"}} {cumulative}"
                        );
                    }
                    let _ = writeln!(
                        out,
                        "{base}_bucket{{resource=\"{label}\",le=\"+Inf\"}} {}",
                        h.count()
                    );
                    let _ = writeln!(out, "{base}_sum{{resource=\"{label}\"}} {}", h.sum());
                    let _ = writeln!(out, "{base}_count{{resource=\"{label}\"}} {}", h.count());
                }
            }
        }
        out
    }

    /// Renders every windowed series as CSV, one row per window:
    /// `family,resource,kind,window_start_ns,value,min,max,last`.
    ///
    /// Counters report the per-window increment in `value`; spans report
    /// busy picoseconds; gauges report the sample count in `value` plus
    /// min/max/last. Histograms are not windowed and are omitted (use
    /// [`Self::to_prometheus`] for distributions).
    pub fn to_timeseries_csv(&self) -> String {
        let mut out = String::from("family,resource,kind,window_start_ns,value,min,max,last\n");
        let w = self.window.as_ps().max(1);
        let start_ns = |idx: u64| idx * w / 1_000;
        for s in &self.series {
            let fam = csv_escape(s.family);
            let res = csv_escape(&s.resource);
            match &s.data {
                SeriesData::Counter { windows, .. } => {
                    for (idx, v) in windows {
                        let _ = writeln!(out, "{fam},{res},counter,{},{v},,,", start_ns(*idx));
                    }
                }
                SeriesData::Span { windows, .. } => {
                    for (idx, busy) in windows {
                        let _ = writeln!(out, "{fam},{res},busy_ps,{},{busy},,,", start_ns(*idx));
                    }
                }
                SeriesData::Gauge { windows } => {
                    for (idx, gw) in windows {
                        let _ = writeln!(
                            out,
                            "{fam},{res},gauge,{},{},{},{},{}",
                            start_ns(*idx),
                            gw.samples,
                            gw.min,
                            gw.max,
                            gw.last
                        );
                    }
                }
                SeriesData::Histo(_) => {}
            }
        }
        out
    }
}

/// Accumulated wall-clock time and invocation count for one profiled frame.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FrameStat {
    /// Total wall-clock nanoseconds.
    pub nanos: u64,
    /// Number of times the frame ran.
    pub count: u64,
}

#[derive(Debug, Default)]
struct ProfInner {
    phases: BTreeMap<&'static str, FrameStat>,
    processes: BTreeMap<Arc<str>, FrameStat>,
}

/// Kernel phase names used by the profiler; process dispatch time nests
/// under [`PHASE_EVALUATE`] in the folded output.
pub const PHASE_EVALUATE: &str = "evaluate";
/// Update phase (channel `request_update` callbacks).
pub const PHASE_UPDATE: &str = "update";
/// Delta-notification promotion phase.
pub const PHASE_DELTA: &str = "delta_notify";
/// Timed-queue pop / time-advance phase.
pub const PHASE_ADVANCE: &str = "time_advance";

/// Atomically-gated wall-clock profiler attributing host time to kernel
/// phases and process dispatches. Disabled: one relaxed load per probe.
#[derive(Debug, Default)]
pub struct HostProfiler {
    enabled: AtomicBool,
    inner: Mutex<ProfInner>,
}

impl HostProfiler {
    /// Creates a disabled profiler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Enables profiling, discarding previously recorded frames.
    pub fn enable(&self) {
        let mut g = self.lock();
        g.phases.clear();
        g.processes.clear();
        drop(g);
        self.enabled.store(true, Ordering::Release);
    }

    /// Stops profiling; recorded frames remain queryable.
    pub fn disable(&self) {
        self.enabled.store(false, Ordering::Release);
    }

    /// One relaxed load: the probe fast path.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Starts a timing probe; `None` when disabled (the only cost then is
    /// the one relaxed load inside [`Self::is_enabled`]).
    #[inline]
    pub(crate) fn start(&self) -> Option<Instant> {
        if self.is_enabled() {
            Some(Instant::now())
        } else {
            None
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, ProfInner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Closes a phase probe opened by [`Self::start`].
    pub(crate) fn record_phase(&self, phase: &'static str, probe: Option<Instant>) {
        if let Some(t0) = probe {
            let d = t0.elapsed();
            let mut g = self.lock();
            let s = g.phases.entry(phase).or_default();
            s.nanos += d.as_nanos() as u64;
            s.count += 1;
        }
    }

    /// Attributes one process dispatch (nested inside the evaluate phase).
    pub(crate) fn record_process(&self, name: Arc<str>, d: Duration) {
        let mut g = self.lock();
        let s = g.processes.entry(name).or_default();
        s.nanos += d.as_nanos() as u64;
        s.count += 1;
    }

    /// Copies the recorded frames out.
    pub fn snapshot(&self) -> HostProfile {
        let g = self.lock();
        HostProfile {
            phases: g.phases.iter().map(|(k, v)| (*k, *v)).collect(),
            processes: g
                .processes
                .iter()
                .map(|(k, v)| (Arc::clone(k), *v))
                .collect(),
        }
    }
}

/// A copy of the profiler's frames, with the folded-stack exporter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HostProfile {
    /// Wall-clock time per kernel phase, sorted by phase name.
    pub phases: Vec<(&'static str, FrameStat)>,
    /// Wall-clock time per dispatched process, sorted by process name.
    pub processes: Vec<(Arc<str>, FrameStat)>,
}

/// Folded-stack frames must not contain the separator characters.
fn folded_frame(name: &str) -> String {
    name.replace([';', ' '], "_")
}

impl HostProfile {
    /// Total profiled wall-clock time across all phases.
    pub fn total(&self) -> Duration {
        Duration::from_nanos(self.phases.iter().map(|(_, s)| s.nanos).sum())
    }

    /// Renders the profile as folded stacks (`frame;frame value` lines,
    /// values in microseconds) for `flamegraph.pl` / speedscope. Process
    /// dispatch time nests under `kernel;evaluate`; the evaluate line
    /// itself carries only scheduler self-time.
    pub fn to_folded(&self) -> String {
        let proc_nanos: u64 = self.processes.iter().map(|(_, s)| s.nanos).sum();
        let us = |nanos: u64| (nanos / 1_000).max(u64::from(nanos > 0));
        let mut out = String::new();
        for (phase, stat) in &self.phases {
            let nanos = if *phase == PHASE_EVALUATE {
                stat.nanos.saturating_sub(proc_nanos)
            } else {
                stat.nanos
            };
            if nanos > 0 {
                let _ = writeln!(out, "kernel;{} {}", folded_frame(phase), us(nanos));
            }
        }
        for (name, stat) in &self.processes {
            if stat.nanos > 0 {
                let _ = writeln!(
                    out,
                    "kernel;{PHASE_EVALUATE};{} {}",
                    folded_frame(name),
                    us(stat.nanos)
                );
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn res(name: &str) -> Arc<str> {
        Arc::from(name)
    }

    #[test]
    fn csv_escape_rfc4180() {
        assert_eq!(csv_escape("plain"), "plain");
        assert_eq!(csv_escape(""), "");
        assert_eq!(csv_escape("a,b"), "\"a,b\"");
        assert_eq!(csv_escape("he said \"no\""), "\"he said \"\"no\"\"\"");
        assert_eq!(csv_escape("line\nbreak"), "\"line\nbreak\"");
        assert!(matches!(csv_escape("plain"), Cow::Borrowed(_)));
    }

    #[test]
    fn disabled_records_nothing() {
        let m = MetricsShared::new();
        m.counter_add("fam", &res("r"), 1, SimTime::ZERO);
        m.gauge_set("fam.g", &res("r"), 7, SimTime::ZERO);
        m.span_record("fam.s", &res("r"), SimTime::ZERO, SimTime::from_ps(10));
        m.observe("fam.h", &res("r"), 42);
        assert!(m.snapshot().is_empty());
    }

    #[test]
    fn enable_resets_previous_series() {
        let m = MetricsShared::new();
        m.enable(SimDur::ns(1));
        m.counter_add("fam", &res("r"), 3, SimTime::ZERO);
        m.enable(SimDur::ns(1));
        assert!(m.snapshot().is_empty());
    }

    #[test]
    fn counter_windows_bucket_by_sim_time() {
        let m = MetricsShared::new();
        m.enable(SimDur::ns(10));
        let r = res("chan");
        m.counter_add("msgs", &r, 1, SimTime::from_ps(0));
        m.counter_add("msgs", &r, 1, SimTime::from_ps(9_999));
        m.counter_add("msgs", &r, 5, SimTime::from_ps(10_000));
        let snap = m.snapshot();
        assert_eq!(snap.counter_total("msgs", "chan"), 7);
        match &snap.find("msgs", "chan").unwrap().data {
            SeriesData::Counter { windows, .. } => {
                assert_eq!(windows.get(&0), Some(&2));
                assert_eq!(windows.get(&1), Some(&5));
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn span_apportions_across_windows() {
        let m = MetricsShared::new();
        m.enable(SimDur::ps(100));
        let r = res("bus0");
        // 250 ps span from t=50: 50 in window 0, 100 in window 1, 100 in
        // window 2.
        m.span_record("busy", &r, SimTime::from_ps(50), SimTime::from_ps(300));
        let snap = m.snapshot();
        match &snap.find("busy", "bus0").unwrap().data {
            SeriesData::Span { total, windows } => {
                assert_eq!(*total, SimDur::ps(250));
                assert_eq!(windows.get(&0), Some(&50));
                assert_eq!(windows.get(&1), Some(&100));
                assert_eq!(windows.get(&2), Some(&100));
            }
            other => panic!("unexpected: {other:?}"),
        }
        let fr = snap.busy_fractions("busy", "bus0");
        assert_eq!(fr.len(), 3);
        assert!((fr[1].1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn gauge_tracks_min_max_last() {
        let m = MetricsShared::new();
        m.enable(SimDur::ns(1));
        let r = res("mbox");
        for v in [3u64, 1, 2] {
            m.gauge_set("depth", &r, v, SimTime::from_ps(10));
        }
        let snap = m.snapshot();
        match &snap.find("depth", "mbox").unwrap().data {
            SeriesData::Gauge { windows } => {
                let w = windows.get(&0).unwrap();
                assert_eq!((w.min, w.max, w.last, w.samples), (1, 3, 2, 3));
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn prometheus_export_shape() {
        let m = MetricsShared::new();
        m.enable(SimDur::ns(10));
        let r = res("dma \"fast\",in");
        m.counter_add("ship.messages", &r, 2, SimTime::ZERO);
        m.span_record(
            "bus.busy",
            &res("bus0"),
            SimTime::ZERO,
            SimTime::from_ps(500),
        );
        m.gauge_set("mbox.occupancy", &res("mb"), 4, SimTime::ZERO);
        m.observe("bus.grant_wait_ns", &res("bus0"), 3);
        let text = m.snapshot().to_prometheus();
        assert!(text.contains("# TYPE shiptlm_ship_messages_total counter"));
        assert!(text.contains("shiptlm_ship_messages_total{resource=\"dma \\\"fast\\\",in\"} 2"));
        assert!(text.contains("# TYPE shiptlm_bus_busy_ps_total counter"));
        assert!(text.contains("shiptlm_bus_busy_ps_total{resource=\"bus0\"} 500"));
        assert!(text.contains("# TYPE shiptlm_mbox_occupancy gauge"));
        assert!(text.contains("# TYPE shiptlm_bus_grant_wait_ns histogram"));
        assert!(text.contains("shiptlm_bus_grant_wait_ns_bucket{resource=\"bus0\",le=\"3\"} 1"));
        assert!(text.contains("shiptlm_bus_grant_wait_ns_bucket{resource=\"bus0\",le=\"+Inf\"} 1"));
        assert!(text.contains("shiptlm_bus_grant_wait_ns_sum{resource=\"bus0\"} 3"));
        assert!(text.contains("shiptlm_bus_grant_wait_ns_count{resource=\"bus0\"} 1"));
    }

    #[test]
    fn timeseries_csv_escapes_resources() {
        let m = MetricsShared::new();
        m.enable(SimDur::ns(1));
        m.counter_add("msgs", &res("a,b"), 1, SimTime::ZERO);
        let csv = m.snapshot().to_timeseries_csv();
        let mut lines = csv.lines();
        assert_eq!(
            lines.next(),
            Some("family,resource,kind,window_start_ns,value,min,max,last")
        );
        assert_eq!(lines.next(), Some("msgs,\"a,b\",counter,0,1,,,"));
    }

    #[test]
    fn profiler_folds_processes_under_evaluate() {
        let p = HostProfiler::new();
        assert!(p.start().is_none());
        p.enable();
        let probe = p.start();
        assert!(probe.is_some());
        p.record_phase(PHASE_EVALUATE, probe);
        p.record_phase(PHASE_ADVANCE, p.start());
        p.record_process(Arc::from("producer p0"), Duration::from_micros(5));
        let prof = p.snapshot();
        assert_eq!(prof.phases.len(), 2);
        assert_eq!(prof.processes.len(), 1);
        // Make the numbers deterministic for the assert: rebuild with known
        // values.
        let prof = HostProfile {
            phases: vec![
                (
                    PHASE_ADVANCE,
                    FrameStat {
                        nanos: 2_000,
                        count: 1,
                    },
                ),
                (
                    PHASE_EVALUATE,
                    FrameStat {
                        nanos: 9_000,
                        count: 1,
                    },
                ),
            ],
            processes: vec![(
                Arc::from("producer p0"),
                FrameStat {
                    nanos: 5_000,
                    count: 1,
                },
            )],
        };
        let folded = prof.to_folded();
        assert!(folded.contains("kernel;time_advance 2\n"));
        assert!(folded.contains("kernel;evaluate 4\n"));
        assert!(folded.contains("kernel;evaluate;producer_p0 5\n"));
        assert_eq!(prof.total(), Duration::from_nanos(11_000));
        drop(prof);
        let _ = p.snapshot();
    }
}
