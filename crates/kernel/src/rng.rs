//! Deterministic pseudo-random number generation for workloads and tests.
//!
//! The stack needs reproducible randomness in three places: synthetic
//! workload generators (payload blocks), randomized scheduler/protocol tests,
//! and benchmark input generation. All of them require *determinism given a
//! seed* rather than cryptographic quality, so a small, dependency-free
//! [SplitMix64](https://prng.di.unimi.it/splitmix64.c)-seeded
//! xoshiro256**-style generator is sufficient and keeps the workspace
//! building without network access to a package registry.
//!
//! ```
//! use shiptlm_kernel::rng::Rng;
//!
//! let mut a = Rng::seed_from_u64(7);
//! let mut b = Rng::seed_from_u64(7);
//! assert_eq!(a.next_u64(), b.next_u64());
//! assert!(a.gen_range_usize(0, 10) < 10);
//! ```

/// A small deterministic PRNG (xoshiro256** seeded via SplitMix64).
#[derive(Debug, Clone)]
pub struct Rng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Rng {
    /// Creates a generator whose entire stream is a function of `seed`.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        Rng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Next 32-bit output.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Next 16-bit output.
    pub fn next_u16(&mut self) -> u16 {
        (self.next_u64() >> 48) as u16
    }

    /// Next byte.
    pub fn next_u8(&mut self) -> u8 {
        (self.next_u64() >> 56) as u8
    }

    /// A uniformly distributed boolean.
    pub fn gen_bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// Uniform `u64` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn gen_range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        let span = hi - lo;
        // Debiased multiply-shift; the slight short-cycle bias of a plain
        // modulo is irrelevant here, but this is just as cheap.
        lo + ((self.next_u64() as u128 * span as u128) >> 64) as u64
    }

    /// Uniform `usize` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn gen_range_usize(&mut self, lo: usize, hi: usize) -> usize {
        self.gen_range_u64(lo as u64, hi as u64) as usize
    }

    /// Fills `buf` with pseudo-random bytes.
    pub fn fill_bytes(&mut self, buf: &mut [u8]) {
        for chunk in buf.chunks_mut(8) {
            let v = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&v[..chunk.len()]);
        }
    }

    /// A pseudo-random byte vector of length `len`.
    pub fn bytes(&mut self, len: usize) -> Vec<u8> {
        let mut out = vec![0u8; len];
        self.fill_bytes(&mut out);
        out
    }

    /// A pseudo-random ASCII-alphanumeric string of length `len`.
    pub fn alnum_string(&mut self, len: usize) -> String {
        const CHARS: &[u8] = b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789 ";
        (0..len)
            .map(|_| CHARS[self.gen_range_usize(0, CHARS.len())] as char)
            .collect()
    }

    /// A finite pseudo-random `f64` (never NaN/inf), roughly in
    /// `[-1e6, 1e6]`.
    pub fn gen_f64(&mut self) -> f64 {
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        (unit - 0.5) * 2_000_000.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = Rng::seed_from_u64(42);
        let mut b = Rng::seed_from_u64(42);
        let mut c = Rng::seed_from_u64(43);
        let va: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = Rng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = r.gen_range_u64(10, 20);
            assert!((10..20).contains(&v));
        }
        // Single-element range is always that element.
        assert_eq!(r.gen_range_usize(5, 6), 5);
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut r = Rng::seed_from_u64(2);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        // Astronomically unlikely to stay all-zero.
        assert!(buf.iter().any(|b| *b != 0));
    }

    #[test]
    fn f64_is_finite() {
        let mut r = Rng::seed_from_u64(3);
        for _ in 0..1000 {
            assert!(r.gen_f64().is_finite());
        }
    }
}
