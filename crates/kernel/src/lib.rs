//! # shiptlm-kernel
//!
//! A discrete-event simulation kernel with SystemC scheduler semantics, the
//! substrate for the `shiptlm` transaction-level-modeling stack (a Rust
//! reproduction of Klingauf, *Systematic Transaction Level Modeling of
//! Embedded Systems with SystemC*, DATE 2005).
//!
//! The kernel provides:
//!
//! * [`Simulation`](sim::Simulation) — elaboration and run control;
//! * [`Event`](event::Event) — immediate/delta/timed notifications;
//! * thread processes with blocking [`wait`](process::ThreadCtx::wait)
//!   semantics and method processes with static sensitivity;
//! * [`Signal`](signal::Signal) (request/update), [`Fifo`](fifo::Fifo),
//!   [`Clock`](clock::Clock), [`SimMutex`](sync::SimMutex) and
//!   [`SimSemaphore`](sync::SimSemaphore);
//! * VCD [tracing](trace) and [statistics](stats) helpers;
//! * [liveness] diagnosis — wait-for graphs, cycle detection and
//!   human-readable [`DeadlockReport`](liveness::DeadlockReport)s, plus a
//!   wall-clock watchdog ([`StopReason::Watchdog`]).
//!
//! ## Example
//!
//! ```
//! use shiptlm_kernel::prelude::*;
//!
//! let sim = Simulation::new();
//! let done = sim.event("done");
//! let done2 = done.clone();
//! sim.spawn_thread("worker", move |ctx| {
//!     ctx.wait_for(SimDur::us(3));
//!     done2.notify();
//! });
//! sim.spawn_thread("observer", move |ctx| {
//!     ctx.wait(&done);
//!     assert_eq!(ctx.now(), SimTime::ZERO + SimDur::us(3));
//! });
//! let result = sim.run();
//! assert_eq!(result.reason, StopReason::Starved);
//! assert_eq!(result.time, SimTime::ZERO + SimDur::us(3));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod causal;
pub mod clock;
pub mod direct;
pub mod event;
pub mod fifo;
mod kernel;
pub mod liveness;
pub mod metrics;
pub mod process;
pub mod rng;
pub mod signal;
pub mod sim;
pub mod stats;
pub mod sync;
pub mod time;
pub mod trace;
pub mod txn;

pub use kernel::{EventId, MethodApi, ProcessId, RunResult, StopReason};

/// Commonly used kernel items.
pub mod prelude {
    pub use crate::causal::{CausalSpan, CausalTrace, SpanSink, TraceCtx};
    pub use crate::clock::Clock;
    pub use crate::direct::{
        Construct, DirectCore, DirectOutcome, DirectSim, Disqualified, Gate, ParkInfo, ParkVerdict,
    };
    pub use crate::event::Event;
    pub use crate::fifo::Fifo;
    pub use crate::liveness::{DeadlockReport, EndpointId, WaitForGraph};
    pub use crate::metrics::{
        csv_escape, HostProfile, MetricSeries, MetricsShared, MetricsSnapshot, SeriesData,
    };
    pub use crate::process::ThreadCtx;
    pub use crate::signal::Signal;
    pub use crate::sim::{SimHandle, Simulation};
    pub use crate::sync::{SimMutex, SimSemaphore};
    pub use crate::time::{SimDur, SimTime};
    pub use crate::txn::{TxnEvent, TxnLevel, TxnOutcome, TxnSpan, TxnTrace};
    pub use crate::{EventId, MethodApi, ProcessId, RunResult, StopReason};
}
