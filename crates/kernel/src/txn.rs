//! Transaction-level trace recorder: structured begin/end spans for every
//! communication operation, across all abstraction levels.
//!
//! Kernel `Signal`s can already be dumped to VCD, but the interesting
//! activity of a transaction-level model — SHIP calls, bus grants, OCP
//! transfers, driver doorbells — is invisible to waveforms. The
//! [`TxnRecorder`](crate::sim::Simulation::record_transactions) captures
//! those operations as timed spans into a bounded ring buffer, aggregates
//! per-resource latency statistics online, and exports either Chrome
//! `trace_event` JSON (loadable in `chrome://tracing` / Perfetto) or
//! line-delimited JSONL.
//!
//! Recording is off by default and costs a single relaxed atomic load per
//! instrumented call when disabled.

use std::collections::{BTreeMap, VecDeque};
use std::fmt;
use std::io::{self, Write};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

use crate::stats::{Histogram, RunningStats};
use crate::time::SimTime;

/// The abstraction level an event was recorded at (its Chrome-trace
/// category).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum TxnLevel {
    /// A SHIP interface method call (`send`/`recv`/`request`/`reply`).
    Ship,
    /// Bus/CAM activity: arbitration grants, data transfers, mailbox ops.
    Bus,
    /// An OCP transaction issued through a master port.
    Ocp,
    /// HW/SW driver activity: doorbells, IRQ/poll waits.
    Driver,
}

impl TxnLevel {
    /// Short lowercase name, used as the trace category.
    pub const fn as_str(self) -> &'static str {
        match self {
            TxnLevel::Ship => "ship",
            TxnLevel::Bus => "bus",
            TxnLevel::Ocp => "ocp",
            TxnLevel::Driver => "driver",
        }
    }
}

impl fmt::Display for TxnLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// How a recorded operation ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TxnOutcome {
    /// The operation completed successfully.
    Ok,
    /// The operation returned an error (timeout, protocol violation,
    /// transport failure).
    Error,
}

impl TxnOutcome {
    /// Short lowercase name for exports.
    pub const fn as_str(self) -> &'static str {
        match self {
            TxnOutcome::Ok => "ok",
            TxnOutcome::Error => "error",
        }
    }
}

/// One completed, timed span as stored in the recorder.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TxnEvent {
    /// Abstraction level / trace category.
    pub level: TxnLevel,
    /// Operation name (`send`, `grant`, `read`, …).
    pub op: &'static str,
    /// The channel, bus or device the operation ran against (interned).
    pub resource: Arc<str>,
    /// Name of the process that performed the operation (interned).
    pub process: Arc<str>,
    /// Simulated time the operation started.
    pub start: SimTime,
    /// Simulated time it completed (`start <= end` always).
    pub end: SimTime,
    /// Payload size in bytes (0 for pure waits/grants).
    pub bytes: usize,
    /// How the operation ended.
    pub outcome: TxnOutcome,
}

/// A span handed to [`ThreadCtx::txn_record`](crate::process::ThreadCtx::txn_record);
/// the context fills in the recording process automatically.
#[derive(Debug)]
pub struct TxnSpan<'a> {
    /// Abstraction level / trace category.
    pub level: TxnLevel,
    /// Operation name.
    pub op: &'static str,
    /// Resource label (channel, bus, device); cloned as an `Arc` bump.
    pub resource: &'a Arc<str>,
    /// Span start.
    pub start: SimTime,
    /// Span end.
    pub end: SimTime,
    /// Payload size in bytes.
    pub bytes: usize,
    /// `true` when the operation succeeded.
    pub ok: bool,
}

/// Online latency/throughput accounting for one `(level, resource)` stream.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ChannelTxnStats {
    /// Completed operations.
    pub count: u64,
    /// Payload bytes across them.
    pub bytes: u64,
    /// Operations that ended in error.
    pub errors: u64,
    /// Span latency in nanoseconds.
    pub latency_ns: RunningStats,
    /// Span latency distribution (nanoseconds, power-of-two buckets).
    pub latency_hist: Histogram,
}

impl ChannelTxnStats {
    fn record(&mut self, ev: &TxnEvent) {
        self.count += 1;
        self.bytes += ev.bytes as u64;
        if ev.outcome == TxnOutcome::Error {
            self.errors += 1;
        }
        let ns = ev.end.saturating_since(ev.start).as_ps() as f64 / 1_000.0;
        self.latency_ns.record(ns);
        self.latency_hist
            .record(ev.end.saturating_since(ev.start).as_ps() / 1_000);
    }
}

/// Key of one statistics stream: abstraction level + resource label.
pub type TxnKey = (TxnLevel, Arc<str>);

/// A snapshot of everything the recorder captured.
///
/// Events live in a bounded ring, so the oldest may have been dropped
/// ([`dropped`](Self::dropped) counts them); the per-resource statistics are
/// accumulated online at record time and therefore cover *every* event, not
/// just the retained window.
#[derive(Debug, Clone, Default)]
pub struct TxnTrace {
    events: Vec<TxnEvent>,
    dropped: u64,
    stats: BTreeMap<TxnKey, ChannelTxnStats>,
}

impl TxnTrace {
    /// Builds a trace from pre-recorded events; per-resource statistics are
    /// recomputed from the given events. Used by tests and by external
    /// tools that stitch transaction spans into other trace formats (see
    /// [`causal`](crate::causal)).
    pub fn from_events(events: Vec<TxnEvent>, dropped: u64) -> Self {
        let mut stats: BTreeMap<TxnKey, ChannelTxnStats> = BTreeMap::new();
        for ev in &events {
            stats
                .entry((ev.level, Arc::clone(&ev.resource)))
                .or_default()
                .record(ev);
        }
        TxnTrace {
            events,
            dropped,
            stats,
        }
    }

    /// The retained events, in completion order.
    pub fn events(&self) -> &[TxnEvent] {
        &self.events
    }

    /// Events evicted from the ring before this snapshot.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Per-`(level, resource)` statistics over **all** recorded events.
    pub fn stats(&self) -> &BTreeMap<TxnKey, ChannelTxnStats> {
        &self.stats
    }

    /// Statistics of one resource at one level, if any were recorded.
    pub fn resource_stats(&self, level: TxnLevel, resource: &str) -> Option<&ChannelTxnStats> {
        self.stats
            .iter()
            .find(|((l, r), _)| *l == level && r.as_ref() == resource)
            .map(|(_, s)| s)
    }

    /// `true` when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty() && self.dropped == 0
    }

    /// Renders the Chrome `trace_event` JSON (the "JSON Array Format" with
    /// complete `"X"` events), loadable in `chrome://tracing` and Perfetto.
    ///
    /// Timestamps are microseconds (fractional; the kernel's picosecond
    /// resolution is preserved down to 1e-6 µs). One trace `tid` is assigned
    /// per process, in first-appearance order, so the rendering is
    /// deterministic.
    pub fn to_chrome_json(&self) -> String {
        let mut out = String::from("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[");
        let mut tids: BTreeMap<&str, usize> = BTreeMap::new();
        let mut order: Vec<&str> = Vec::new();
        for ev in &self.events {
            if !tids.contains_key(ev.process.as_ref()) {
                tids.insert(ev.process.as_ref(), order.len());
                order.push(ev.process.as_ref());
            }
        }
        let mut first = true;
        for (tid, name) in order.iter().enumerate() {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!(
                "{{\"ph\":\"M\",\"pid\":0,\"tid\":{tid},\"name\":\"thread_name\",\"args\":{{\"name\":{}}}}}",
                json_string(name)
            ));
        }
        for ev in &self.events {
            if !first {
                out.push(',');
            }
            first = false;
            let tid = tids[ev.process.as_ref()];
            let ts = ev.start.as_ps() as f64 / 1e6;
            let dur = ev.end.saturating_since(ev.start).as_ps() as f64 / 1e6;
            out.push_str(&format!(
                "{{\"ph\":\"X\",\"pid\":0,\"tid\":{tid},\"cat\":\"{}\",\"name\":{},\"ts\":{ts},\"dur\":{dur},\"args\":{{\"resource\":{},\"bytes\":{},\"outcome\":\"{}\"}}}}",
                ev.level.as_str(),
                json_string(ev.op),
                json_string(&ev.resource),
                ev.bytes,
                ev.outcome.as_str(),
            ));
        }
        // Chrome's "JSON Object Format" metadata member: tools that know
        // about it surface the eviction count; everyone else ignores it.
        out.push_str(&format!(
            "],\"otherData\":{{\"dropped\":{}}}}}",
            self.dropped
        ));
        out
    }

    /// Renders line-delimited JSON: one object per event, raw picosecond
    /// timestamps.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for ev in &self.events {
            out.push_str(&format!(
                "{{\"level\":\"{}\",\"op\":{},\"resource\":{},\"process\":{},\"start_ps\":{},\"end_ps\":{},\"bytes\":{},\"outcome\":\"{}\"}}\n",
                ev.level.as_str(),
                json_string(ev.op),
                json_string(&ev.resource),
                json_string(&ev.process),
                ev.start.as_ps(),
                ev.end.as_ps(),
                ev.bytes,
                ev.outcome.as_str(),
            ));
        }
        out
    }

    /// Writes the Chrome trace JSON to `path`.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error.
    pub fn write_chrome<P: AsRef<Path>>(&self, path: P) -> io::Result<()> {
        let mut f = std::fs::File::create(path)?;
        f.write_all(self.to_chrome_json().as_bytes())?;
        f.flush()
    }

    /// Writes the JSONL export to `path`.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error.
    pub fn write_jsonl<P: AsRef<Path>>(&self, path: P) -> io::Result<()> {
        let mut f = std::fs::File::create(path)?;
        f.write_all(self.to_jsonl().as_bytes())?;
        f.flush()
    }
}

impl fmt::Display for TxnTrace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} events retained ({} dropped), {} streams:",
            self.events.len(),
            self.dropped,
            self.stats.len()
        )?;
        for ((level, resource), s) in &self.stats {
            writeln!(
                f,
                "  [{level}] {resource}: n={} bytes={} err={} latency {}",
                s.count, s.bytes, s.errors, s.latency_ns
            )?;
        }
        Ok(())
    }
}

/// Escapes `s` as a JSON string literal (with surrounding quotes).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

struct TxnRing {
    buf: VecDeque<TxnEvent>,
    capacity: usize,
    dropped: u64,
    stats: BTreeMap<TxnKey, ChannelTxnStats>,
}

/// Kernel-shared recorder state: disabled by default; a single relaxed
/// atomic load gates every instrumented call.
pub(crate) struct TxnShared {
    enabled: AtomicBool,
    inner: Mutex<TxnRing>,
}

impl TxnShared {
    pub(crate) fn new() -> Self {
        TxnShared {
            enabled: AtomicBool::new(false),
            inner: Mutex::new(TxnRing {
                buf: VecDeque::new(),
                capacity: 0,
                dropped: 0,
                stats: BTreeMap::new(),
            }),
        }
    }

    /// Enables recording into a fresh ring of at most `capacity` events.
    pub(crate) fn enable(&self, capacity: usize) {
        let mut g = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        *g = TxnRing {
            buf: VecDeque::with_capacity(capacity.min(4096)),
            capacity: capacity.max(1),
            dropped: 0,
            stats: BTreeMap::new(),
        };
        self.enabled.store(true, Ordering::Release);
    }

    #[inline]
    pub(crate) fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    pub(crate) fn record(&self, ev: TxnEvent) {
        if !self.is_enabled() {
            return;
        }
        let mut g = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        g.stats
            .entry((ev.level, Arc::clone(&ev.resource)))
            .or_default()
            .record(&ev);
        if g.buf.len() >= g.capacity {
            if g.dropped == 0 {
                // Warn once per enable: silent eviction makes a truncated
                // trace look complete. The Chrome export also carries the
                // final count in `otherData.dropped`.
                eprintln!(
                    "shiptlm-kernel: transaction ring full ({} events); evicting oldest \
                     (raise the capacity passed to record_transactions to keep them)",
                    g.capacity
                );
            }
            g.buf.pop_front();
            g.dropped += 1;
        }
        g.buf.push_back(ev);
    }

    /// Events evicted from the ring so far — the live counterpart of
    /// [`TxnTrace::dropped`], exported as `txn_trace_dropped_total`.
    pub(crate) fn dropped_count(&self) -> u64 {
        self.inner.lock().unwrap_or_else(|e| e.into_inner()).dropped
    }

    pub(crate) fn snapshot(&self) -> TxnTrace {
        let g = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        TxnTrace {
            events: g.buf.iter().cloned().collect(),
            dropped: g.dropped,
            stats: g.stats.clone(),
        }
    }
}

impl fmt::Debug for TxnShared {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TxnShared")
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(op: &'static str, process: &str, start: u64, end: u64, bytes: usize) -> TxnEvent {
        TxnEvent {
            level: TxnLevel::Ship,
            op,
            resource: Arc::from("ch0"),
            process: Arc::from(process),
            start: SimTime::from_ps(start),
            end: SimTime::from_ps(end),
            bytes,
            outcome: TxnOutcome::Ok,
        }
    }

    #[test]
    fn disabled_recorder_ignores_events() {
        let t = TxnShared::new();
        assert!(!t.is_enabled());
        t.record(ev("send", "p", 0, 10, 4));
        assert!(t.snapshot().is_empty());
    }

    #[test]
    fn ring_is_bounded_and_counts_drops() {
        let t = TxnShared::new();
        t.enable(2);
        for i in 0..5u64 {
            t.record(ev("send", "p", i * 10, i * 10 + 5, 1));
        }
        let snap = t.snapshot();
        assert_eq!(snap.events().len(), 2);
        assert_eq!(snap.dropped(), 3);
        // Stats cover all five events, not just the retained window.
        let s = snap
            .resource_stats(TxnLevel::Ship, "ch0")
            .expect("stream recorded");
        assert_eq!(s.count, 5);
        assert_eq!(s.bytes, 5);
        assert_eq!(s.latency_ns.count(), 5);
    }

    #[test]
    fn re_enable_resets_the_ring() {
        let t = TxnShared::new();
        t.enable(8);
        t.record(ev("send", "p", 0, 1, 1));
        t.enable(8);
        assert!(t.snapshot().is_empty());
    }

    #[test]
    fn chrome_export_shape() {
        let t = TxnShared::new();
        t.enable(16);
        t.record(ev("send", "producer", 1_000_000, 3_000_000, 64));
        t.record(ev("recv", "consumer", 2_000_000, 3_000_000, 64));
        let json = t.snapshot().to_chrome_json();
        assert!(json.starts_with("{\"displayTimeUnit\":\"ns\",\"traceEvents\":["));
        assert!(json.ends_with("],\"otherData\":{\"dropped\":0}}"));
        assert!(json.contains("\"ph\":\"M\""));
        assert!(json.contains("\"name\":\"send\""));
        assert!(json.contains("\"cat\":\"ship\""));
        // 1e6 ps = 1 us.
        assert!(json.contains("\"ts\":1,"));
        // Two processes -> two distinct tids.
        assert!(json.contains("\"tid\":0"));
        assert!(json.contains("\"tid\":1"));
    }

    #[test]
    fn jsonl_export_one_line_per_event() {
        let t = TxnShared::new();
        t.enable(16);
        t.record(ev("send", "p", 0, 5, 2));
        t.record(ev("recv", "q", 5, 9, 2));
        let text = t.snapshot().to_jsonl();
        assert_eq!(text.lines().count(), 2);
        assert!(text.contains("\"start_ps\":0"));
        assert!(text.contains("\"end_ps\":9"));
    }

    #[test]
    fn json_string_escapes() {
        assert_eq!(json_string("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn stats_track_errors() {
        let t = TxnShared::new();
        t.enable(4);
        let mut bad = ev("send", "p", 0, 7_000, 3);
        bad.outcome = TxnOutcome::Error;
        t.record(bad);
        let snap = t.snapshot();
        let s = snap.resource_stats(TxnLevel::Ship, "ch0").unwrap();
        assert_eq!(s.errors, 1);
        assert_eq!(s.latency_ns.min(), Some(7.0));
    }
}
