//! Lightweight statistics containers used by bus models and the exploration
//! engine: counters, running moments and histograms.

use std::fmt;

/// A monotonically increasing event counter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counter(u64);

impl Counter {
    /// Creates a zeroed counter.
    pub fn new() -> Self {
        Counter(0)
    }

    /// Adds one.
    pub fn incr(&mut self) {
        self.0 += 1;
    }

    /// Adds `n`.
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Current count.
    pub fn get(&self) -> u64 {
        self.0
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Streaming mean/variance/min/max (Welford's algorithm).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunningStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

// A derived `Default` would zero-initialize min/max, so the first recorded
// sample could never lower the minimum below 0.0. `Default` must be
// indistinguishable from `new()` (min = +INF, max = -INF).
impl Default for RunningStats {
    fn default() -> Self {
        Self::new()
    }
}

impl RunningStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        RunningStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean; zero when empty.
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance; zero with fewer than two samples.
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest sample; `None` when empty.
    pub fn min(&self) -> Option<f64> {
        (self.n > 0).then_some(self.min)
    }

    /// Largest sample; `None` when empty.
    pub fn max(&self) -> Option<f64> {
        (self.n > 0).then_some(self.max)
    }

    /// Merges another accumulator into this one.
    pub fn merge(&mut self, other: &RunningStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n = (self.n + other.n) as f64;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.n as f64 / n;
        let m2 = self.m2 + other.m2 + delta * delta * self.n as f64 * other.n as f64 / n;
        self.n += other.n;
        self.mean = mean;
        self.m2 = m2;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl fmt::Display for RunningStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.2} sd={:.2} min={:.2} max={:.2}",
            self.n,
            self.mean(),
            self.std_dev(),
            self.min().unwrap_or(0.0),
            self.max().unwrap_or(0.0)
        )
    }
}

/// A power-of-two bucketed histogram of `u64` samples (bucket *k* holds
/// values in `[2^k, 2^(k+1))`, bucket 0 holds zero and one).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; 64],
    count: u64,
    sum: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: [0; 64],
            count: 0,
            sum: 0,
        }
    }

    /// Records a sample.
    pub fn record(&mut self, x: u64) {
        let bucket = if x < 2 {
            0
        } else {
            63 - x.leading_zeros() as usize
        };
        self.buckets[bucket] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(x);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Saturating sum of the recorded samples.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Mean of the recorded samples (exact, from the running sum).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// An upper bound of the p-quantile (`0.0..=1.0`) using bucket upper
    /// edges. Suitable for latency reporting where a conservative bound is
    /// wanted.
    pub fn quantile_upper_bound(&self, p: f64) -> u64 {
        assert!((0.0..=1.0).contains(&p), "quantile must be within [0, 1]");
        if self.count == 0 {
            return 0;
        }
        let target = (p * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (k, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return if k == 0 { 1 } else { (1u64 << (k + 1)) - 1 };
            }
        }
        u64::MAX
    }

    /// Iterates over non-empty buckets as `(lower_edge, count)`.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(k, &c)| (if k == 0 { 0 } else { 1u64 << k }, c))
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let mut c = Counter::new();
        c.incr();
        c.add(4);
        assert_eq!(c.get(), 5);
    }

    #[test]
    fn running_stats_match_closed_form() {
        let mut s = RunningStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.record(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 4.0).abs() < 1e-12);
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(9.0));
    }

    #[test]
    fn running_stats_merge_equals_bulk() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64) * 0.37).collect();
        let mut bulk = RunningStats::new();
        for &x in &data {
            bulk.record(x);
        }
        let mut a = RunningStats::new();
        let mut b = RunningStats::new();
        for &x in &data[..40] {
            a.record(x);
        }
        for &x in &data[40..] {
            b.record(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), bulk.count());
        assert!((a.mean() - bulk.mean()).abs() < 1e-9);
        assert!((a.variance() - bulk.variance()).abs() < 1e-9);
    }

    #[test]
    fn default_is_indistinguishable_from_new() {
        assert_eq!(RunningStats::default(), RunningStats::new());
        // The derived Default used to start min/max at 0.0, so the first
        // sample above zero could never set the minimum.
        let mut s = RunningStats::default();
        s.record(7.0);
        assert_eq!(s.min(), Some(7.0));
        assert_eq!(s.max(), Some(7.0));
    }

    #[test]
    fn merge_of_default_is_noop() {
        let mut s = RunningStats::new();
        s.record(3.0);
        s.record(9.0);
        let before = s;
        s.merge(&RunningStats::default());
        assert_eq!(s, before);
        // And merging *into* a default accumulator copies the other side.
        let mut d = RunningStats::default();
        d.merge(&before);
        assert_eq!(d, before);
    }

    #[test]
    fn empty_stats_are_benign() {
        let s = RunningStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
    }

    #[test]
    fn histogram_buckets_powers_of_two() {
        let mut h = Histogram::new();
        for x in [0, 1, 2, 3, 4, 7, 8, 1000] {
            h.record(x);
        }
        let buckets: Vec<_> = h.iter().collect();
        assert_eq!(buckets, vec![(0, 2), (2, 2), (4, 2), (8, 1), (512, 1)]);
        assert_eq!(h.count(), 8);
    }

    #[test]
    fn histogram_quantile_bounds() {
        let mut h = Histogram::new();
        for _ in 0..99 {
            h.record(10);
        }
        h.record(100_000);
        // p50 falls in the [8,16) bucket -> bound 15.
        assert_eq!(h.quantile_upper_bound(0.5), 15);
        assert!(h.quantile_upper_bound(1.0) >= 100_000);
    }

    #[test]
    fn histogram_merge() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(5);
        b.record(5);
        b.record(600);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert!((a.mean() - (5.0 + 5.0 + 600.0) / 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "quantile must be within")]
    fn quantile_out_of_range_panics() {
        Histogram::new().quantile_upper_bound(1.5);
    }
}
