//! Request/update signals, analogous to SystemC's `sc_signal`.

use std::fmt;
use std::sync::{Arc, Mutex};

use crate::event::Event;
use crate::kernel::{EventId, KernelShared};
use crate::trace::{TraceId, TraceValue};

/// Values a [`Signal`] can carry.
///
/// Blanket-implemented for every `Clone + PartialEq + Send + 'static` type.
pub trait SignalValue: Clone + PartialEq + Send + 'static {}

impl<T: Clone + PartialEq + Send + 'static> SignalValue for T {}

/// VCD trace id plus the monomorphized bit-conversion for one signal.
type TraceHook<T> = (TraceId, fn(&T) -> u64);

struct SigState<T> {
    cur: T,
    next: Option<T>,
    update_pending: bool,
    /// VCD hook: trace id plus the monomorphized bit-conversion, installed by
    /// [`Signal::trace`].
    trace: Option<TraceHook<T>>,
}

struct SigShared<T> {
    kernel: Arc<KernelShared>,
    name: String,
    state: Mutex<SigState<T>>,
    changed: EventId,
}

/// A signal with SystemC request/update semantics: a write becomes visible
/// to readers only in the next delta cycle, and the value-changed event fires
/// only when the new value differs from the old one.
///
/// Cloning a `Signal` yields another handle to the same signal.
///
/// ```
/// use shiptlm_kernel::prelude::*;
///
/// let sim = Simulation::new();
/// let sig = sim.signal("flag", false);
/// let (w, r) = (sig.clone(), sig.clone());
/// sim.spawn_thread("writer", move |ctx| {
///     w.write(true);
///     // Not yet visible: update happens after this evaluate phase.
///     assert!(!w.read());
///     ctx.wait_delta();
///     assert!(w.read());
/// });
/// sim.spawn_thread("reader", move |ctx| {
///     let ev = r.changed_event();
///     ctx.wait(&ev);
///     assert!(r.read());
/// });
/// sim.run();
/// ```
pub struct Signal<T> {
    shared: Arc<SigShared<T>>,
}

impl<T> Clone for Signal<T> {
    fn clone(&self) -> Self {
        Signal {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T: SignalValue> Signal<T> {
    pub(crate) fn new(kernel: Arc<KernelShared>, name: &str, init: T) -> Self {
        let changed = kernel.new_event(&format!("{name}.changed"));
        Signal {
            shared: Arc::new(SigShared {
                kernel,
                name: name.to_string(),
                state: Mutex::new(SigState {
                    cur: init,
                    next: None,
                    update_pending: false,
                    trace: None,
                }),
                changed,
            }),
        }
    }

    /// The signal's name.
    pub fn name(&self) -> &str {
        &self.shared.name
    }

    /// Reads the current (stable) value.
    pub fn read(&self) -> T {
        self.shared.lock().cur.clone()
    }

    /// Schedules `v` to become the signal value in the next delta cycle.
    /// Multiple writes within one evaluate phase: the last one wins.
    pub fn write(&self, v: T) {
        let need_request = {
            let mut g = self.shared.lock();
            g.next = Some(v);
            !std::mem::replace(&mut g.update_pending, true)
        };
        if need_request {
            let shared = Arc::clone(&self.shared);
            self.shared
                .kernel
                .request_update(Box::new(move |k| Self::apply(&shared, k)));
        }
    }

    /// The event notified (one delta later) whenever the value changes.
    pub fn changed_event(&self) -> Event {
        Event::from_id(Arc::clone(&self.shared.kernel), self.shared.changed)
    }

    fn apply(shared: &Arc<SigShared<T>>, kernel: &KernelShared) {
        let (changed, trace_rec) = {
            let mut g = shared.lock();
            g.update_pending = false;
            match g.next.take() {
                Some(next) if next != g.cur => {
                    g.cur = next;
                    let rec = g.trace.map(|(id, conv)| (id, conv(&g.cur)));
                    (true, rec)
                }
                _ => (false, None),
            }
        };
        if changed {
            kernel.notify_delta(shared.changed);
            if let Some((id, bits)) = trace_rec {
                let now = kernel.now();
                let mut tg = kernel.tracer.lock().unwrap_or_else(|e| e.into_inner());
                if let Some(t) = tg.as_mut() {
                    t.change(now.as_ps(), id, bits);
                }
            }
        }
    }
}

impl<T: SignalValue + TraceValue> Signal<T> {
    /// Registers this signal in the simulation's VCD trace under
    /// `hierarchical_name` (e.g. `"top.bus.req"`).
    ///
    /// Call after [`Simulation::trace_vcd`](crate::sim::Simulation::trace_vcd)
    /// and before running.
    pub fn trace(&self, hierarchical_name: &str) {
        let mut tracer_guard = self
            .shared
            .kernel
            .tracer
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        let Some(tracer) = tracer_guard.as_mut() else {
            return;
        };
        let mut g = self.shared.lock();
        let id = tracer.register(hierarchical_name, T::WIDTH, g.cur.to_bits());
        g.trace = Some((id, T::to_bits));
    }
}

impl<T> SigShared<T> {
    fn lock(&self) -> std::sync::MutexGuard<'_, SigState<T>> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: SignalValue + fmt::Debug> fmt::Debug for Signal<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Signal")
            .field("name", &self.shared.name)
            .field("value", &self.read())
            .finish()
    }
}
