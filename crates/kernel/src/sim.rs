//! The public simulation facade: elaboration and run control.

use std::fmt;
use std::path::Path;
use std::sync::Arc;

use crate::clock::Clock;
use crate::event::Event;
use crate::fifo::Fifo;
use crate::kernel::{KernelShared, MethodApi, ProcessId, RunResult};
use crate::liveness::{DeadlockReport, EndpointId};
use crate::metrics::{HostProfile, MetricsShared, MetricsSnapshot};
use crate::process::ThreadCtx;
use crate::signal::{Signal, SignalValue};
use crate::time::{SimDur, SimTime};
use crate::trace::{TraceError, VcdTracer};
use crate::txn::TxnTrace;

/// A discrete-event simulation: owns the kernel, elaborates processes and
/// channels, and drives the scheduler.
///
/// ```
/// use shiptlm_kernel::prelude::*;
///
/// let sim = Simulation::new();
/// let fifo = sim.fifo::<u32>("pipe", 4);
/// let (tx, rx) = (fifo.clone(), fifo);
/// sim.spawn_thread("producer", move |ctx| {
///     for i in 0..10 {
///         tx.write(ctx, i);
///         ctx.wait_for(SimDur::ns(10));
///     }
/// });
/// sim.spawn_thread("consumer", move |ctx| {
///     for i in 0..10 {
///         assert_eq!(rx.read(ctx), i);
///     }
/// });
/// let result = sim.run();
/// assert_eq!(result.reason, StopReason::Starved);
/// ```
pub struct Simulation {
    kernel: Arc<KernelShared>,
}

impl Simulation {
    /// Creates an empty simulation at time zero.
    pub fn new() -> Self {
        Simulation {
            kernel: KernelShared::new(),
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.kernel.now()
    }

    /// Total number of delta cycles executed so far. A useful proxy for
    /// scheduler effort when comparing abstraction levels.
    pub fn delta_count(&self) -> u64 {
        self.kernel.delta_count()
    }

    /// Creates a named event.
    pub fn event(&self, name: &str) -> Event {
        Event::new(Arc::clone(&self.kernel), name)
    }

    /// Creates a signal with request/update semantics (writes become visible
    /// in the next delta cycle).
    pub fn signal<T: SignalValue>(&self, name: &str, init: T) -> Signal<T> {
        Signal::new(Arc::clone(&self.kernel), name, init)
    }

    /// Creates a bounded blocking FIFO channel.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn fifo<T: Send + 'static>(&self, name: &str, capacity: usize) -> Fifo<T> {
        Fifo::new(Arc::clone(&self.kernel), name, capacity)
    }

    /// Creates a free-running clock with the given period (50% duty cycle).
    pub fn clock(&self, name: &str, period: SimDur) -> Clock {
        Clock::new(Arc::clone(&self.kernel), name, period)
    }

    /// Spawns a thread process. The body runs when the simulation starts and
    /// may block via the [`ThreadCtx`] it receives.
    pub fn spawn_thread<F>(&self, name: &str, body: F) -> ProcessId
    where
        F: FnOnce(&mut ThreadCtx) + Send + 'static,
    {
        self.kernel.spawn_thread(name, Box::new(body))
    }

    /// Spawns a method process triggered whenever any event in `sensitivity`
    /// fires. The callback is also invoked once at initialization.
    pub fn spawn_method<F>(&self, name: &str, sensitivity: &[&Event], cb: F) -> ProcessId
    where
        F: FnMut(&mut MethodApi) + Send + 'static,
    {
        let ids: Vec<_> = sensitivity.iter().map(|e| e.id).collect();
        self.kernel.spawn_method(name, &ids, true, Box::new(cb))
    }

    /// Like [`spawn_method`](Self::spawn_method) but without the
    /// initialization call (SystemC `dont_initialize`).
    pub fn spawn_method_no_init<F>(&self, name: &str, sensitivity: &[&Event], cb: F) -> ProcessId
    where
        F: FnMut(&mut MethodApi) + Send + 'static,
    {
        let ids: Vec<_> = sensitivity.iter().map(|e| e.id).collect();
        self.kernel.spawn_method(name, &ids, false, Box::new(cb))
    }

    /// A cloneable handle usable from process bodies or helper structs.
    pub fn handle(&self) -> SimHandle {
        SimHandle::new(Arc::clone(&self.kernel))
    }

    /// Enables VCD tracing; signals registered with
    /// [`Signal::trace`] afterwards are recorded to `path` when the
    /// simulation ends (or [`flush_trace`](Self::flush_trace) is called).
    ///
    /// # Errors
    ///
    /// Returns an error if the file cannot be created.
    pub fn trace_vcd<P: AsRef<Path>>(&self, path: P) -> Result<(), TraceError> {
        let tracer = VcdTracer::create(path.as_ref())?;
        *self.kernel.tracer.lock().unwrap_or_else(|e| e.into_inner()) = Some(tracer);
        Ok(())
    }

    /// Writes out buffered VCD data.
    ///
    /// # Errors
    ///
    /// Returns an error if writing the file fails.
    pub fn flush_trace(&self) -> Result<(), TraceError> {
        let mut g = self.kernel.tracer.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(t) = g.as_mut() {
            t.flush()?;
        }
        Ok(())
    }

    /// Runs until event starvation or an explicit stop.
    pub fn run(&self) -> RunResult {
        self.kernel.run(None)
    }

    /// Runs until the given absolute time (inclusive of events at it).
    pub fn run_until(&self, t: SimTime) -> RunResult {
        self.kernel.run(Some(t))
    }

    /// Runs for `d` more simulated time. A duration that would overflow
    /// [`SimTime`] saturates to [`SimTime::MAX`] (the infinite horizon), so
    /// the call behaves like an unbounded [`run`](Self::run).
    pub fn run_for(&self, d: SimDur) -> RunResult {
        let limit = self.now().checked_add(d).unwrap_or(SimTime::MAX);
        self.kernel.run(Some(limit))
    }

    /// Requests a stop; takes effect at the end of the current delta cycle.
    pub fn stop(&self) {
        self.kernel.request_stop();
    }

    /// Arms a wall-clock watchdog: any subsequent `run*` call returns
    /// [`StopReason::Watchdog`](crate::kernel::StopReason::Watchdog) once
    /// `budget` of real time has elapsed, instead of spinning forever on a
    /// livelocked model. Pass `None` to disarm.
    pub fn set_watchdog(&self, budget: Option<std::time::Duration>) {
        self.kernel.set_watchdog(budget);
    }

    /// Enables the transaction-level trace recorder with a bounded ring of
    /// at most `capacity` events (per-resource statistics still cover every
    /// event — see [`TxnTrace`]). Calling again resets the recorder.
    ///
    /// When never called, instrumented channels pay only a single relaxed
    /// atomic load per operation.
    pub fn record_transactions(&self, capacity: usize) {
        self.kernel.txn.enable(capacity);
    }

    /// Snapshots everything the transaction recorder captured so far.
    /// Returns an empty trace when recording was never enabled.
    pub fn txn_trace(&self) -> TxnTrace {
        self.kernel.txn.snapshot()
    }

    /// Number of events evicted from the transaction ring so far (the live
    /// counterpart of [`TxnTrace::dropped`]); zero when recording was never
    /// enabled. Exporters surface this as the `txn_trace_dropped_total`
    /// counter.
    pub fn txn_dropped(&self) -> u64 {
        self.kernel.txn.dropped_count()
    }

    /// Enables the time-resolved metrics registry with the given sim-time
    /// sampling window (bus busy time, SHIP message/byte rates, mailbox
    /// occupancy, … become per-window series). Calling again resets the
    /// registry. When never called, instrumented operations pay only a
    /// single relaxed atomic load.
    pub fn enable_metrics(&self, window: SimDur) {
        self.kernel.metrics.enable(window);
    }

    /// Snapshots every metric series recorded so far; empty when metrics
    /// were never enabled. See
    /// [`MetricsSnapshot::to_prometheus`] and
    /// [`MetricsSnapshot::to_timeseries_csv`] for the exporters.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.kernel.metrics.snapshot()
    }

    /// Enables the host-time profiler: wall-clock time is attributed to
    /// kernel phases and process dispatches. Calling again resets it.
    pub fn enable_profiler(&self) {
        self.kernel.profiler.enable();
    }

    /// Snapshots the host-time profile; render with
    /// [`HostProfile::to_folded`] for flamegraph tooling. Empty when the
    /// profiler was never enabled.
    pub fn host_profile(&self) -> HostProfile {
        self.kernel.profiler.snapshot()
    }

    /// Snapshots every blocked process, builds the wait-for graph from
    /// channel-registered edge metadata and runs cycle detection.
    ///
    /// Call after a run ends — typically on
    /// [`StopReason::Starved`](crate::kernel::StopReason::Starved) (all
    /// processes blocked, which is a deadlock whenever work was still
    /// outstanding) or [`StopReason::Watchdog`](crate::kernel::StopReason::Watchdog).
    /// The report's `Display` impl renders the human-readable diagnosis.
    pub fn diagnose(&self) -> DeadlockReport {
        self.kernel.diagnose()
    }
}

impl Default for Simulation {
    fn default() -> Self {
        Self::new()
    }
}

impl Drop for Simulation {
    fn drop(&mut self) {
        self.kernel.teardown();
        let mut g = self.kernel.tracer.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(t) = g.as_mut() {
            // Drop cannot return the error; at minimum make the data loss
            // visible. Call `flush_trace()` before dropping to handle it.
            if let Err(e) = t.flush() {
                eprintln!("shiptlm-kernel: failed to flush VCD trace on drop: {e}");
            }
        }
    }
}

impl fmt::Debug for Simulation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Simulation")
            .field("now", &self.now())
            .field("delta_count", &self.delta_count())
            .finish()
    }
}

/// Cloneable, `Send` handle onto a running simulation.
///
/// Obtained from [`Simulation::handle`] or [`ThreadCtx::sim`]; allows
/// creating events/channels and spawning processes dynamically (e.g. an RTOS
/// task creating another task at runtime).
#[derive(Clone)]
pub struct SimHandle {
    kernel: Arc<KernelShared>,
}

impl SimHandle {
    pub(crate) fn new(kernel: Arc<KernelShared>) -> Self {
        SimHandle { kernel }
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.kernel.now()
    }

    /// Creates a named event.
    pub fn event(&self, name: &str) -> Event {
        Event::new(Arc::clone(&self.kernel), name)
    }

    /// Creates a signal.
    pub fn signal<T: SignalValue>(&self, name: &str, init: T) -> Signal<T> {
        Signal::new(Arc::clone(&self.kernel), name, init)
    }

    /// Creates a bounded FIFO.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn fifo<T: Send + 'static>(&self, name: &str, capacity: usize) -> Fifo<T> {
        Fifo::new(Arc::clone(&self.kernel), name, capacity)
    }

    /// Creates a free-running clock with the given period (50% duty cycle).
    pub fn clock(&self, name: &str, period: SimDur) -> Clock {
        Clock::new(Arc::clone(&self.kernel), name, period)
    }

    /// Spawns a thread process; during a run it joins the current evaluate
    /// phase.
    pub fn spawn_thread<F>(&self, name: &str, body: F) -> ProcessId
    where
        F: FnOnce(&mut ThreadCtx) + Send + 'static,
    {
        self.kernel.spawn_thread(name, Box::new(body))
    }

    /// Requests the simulation to stop.
    pub fn stop(&self) {
        self.kernel.request_stop();
    }

    /// Registers a blocking endpoint (one side of a channel, a bus mailbox
    /// adapter, a driver port) for liveness diagnosis.
    pub fn register_blocking_endpoint(&self, resource: &str, side: &str) -> EndpointId {
        self.kernel.register_endpoint(resource, side)
    }

    /// Records which process is currently using `ep`; wait-for edges point
    /// at this process when someone blocks on an event `ep` fires.
    pub fn endpoint_user(&self, ep: EndpointId, pid: ProcessId) {
        self.kernel.endpoint_user(ep, pid);
    }

    /// Declares which *named* process is expected to use `ep` (e.g. the PE
    /// label a port was handed to). Used as a fallback when the owner
    /// deadlocks before its first call ever records a
    /// [`endpoint_user`](Self::endpoint_user).
    pub fn endpoint_owner_hint(&self, ep: EndpointId, name: &str) {
        self.kernel.endpoint_owner_hint(ep, name);
    }

    /// Attaches live detail text to `ep` (e.g. `owed replies: 1`), shown in
    /// deadlock reports.
    pub fn endpoint_note(&self, ep: EndpointId, note: Option<String>) {
        self.kernel.endpoint_note(ep, note);
    }

    /// Annotates `event` with the meaning of waiting on it (e.g.
    /// `request (awaiting reply)`) and, when known, the endpoint whose
    /// activity fires it.
    pub fn annotate_wait(&self, event: &Event, description: &str, notifier: Option<EndpointId>) {
        self.kernel.annotate_wait(event.id, description, notifier);
    }

    /// See [`Simulation::diagnose`].
    pub fn diagnose(&self) -> DeadlockReport {
        self.kernel.diagnose()
    }

    /// `true` when the transaction recorder is enabled. Instrumentation
    /// sites check this before doing any span bookkeeping.
    #[inline]
    pub fn txn_enabled(&self) -> bool {
        self.kernel.txn.is_enabled()
    }

    /// See [`Simulation::txn_trace`].
    pub fn txn_trace(&self) -> TxnTrace {
        self.kernel.txn.snapshot()
    }

    /// `true` when the metrics registry is enabled. Instrumentation sites
    /// check this before any series bookkeeping.
    #[inline]
    pub fn metrics_enabled(&self) -> bool {
        self.kernel.metrics.is_enabled()
    }

    /// The kernel's metrics registry, for recording from instrumented
    /// channels and adapters.
    pub fn metrics(&self) -> &MetricsShared {
        &self.kernel.metrics
    }
}

impl fmt::Debug for SimHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SimHandle")
            .field("now", &self.now())
            .finish()
    }
}
