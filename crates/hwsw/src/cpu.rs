//! A CPU subsystem: RTOS + bus master port + interrupt controller, with
//! eSW synthesis helpers (paper §4).
//!
//! [`Cpu::spawn_sw_pe`] is the "SW synthesis" step: it takes a processing
//! element behaviour written against `(&mut ThreadCtx, Vec<ShipPort>)` — the
//! very same signature used for hardware PEs — and turns it into an RTOS
//! task whose SHIP ports are backed by the device driver. No PE source
//! changes are involved; only the port binding differs.

use std::fmt;
use std::sync::Arc;

use shiptlm_kernel::process::ThreadCtx;
use shiptlm_kernel::signal::Signal;
use shiptlm_kernel::sim::SimHandle;
use shiptlm_kernel::time::SimDur;
use shiptlm_ocp::tl::OcpMasterPort;
use shiptlm_ship::channel::ShipPort;

use crate::driver::{DriverConfig, SwShipMaster, SwShipSlave};
use crate::irq::IrqController;
use crate::rtos::{Rtos, RtosSemaphore, TaskId};

/// Which end of a mapped channel a SW PE drives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SwRole {
    /// The SW task sends/requests (HW peer is the slave).
    Master,
    /// The SW task receives/replies (HW peer is the master).
    Slave,
}

/// Binding of one SHIP channel endpoint into a SW task.
#[derive(Debug, Clone)]
pub struct SwChannelBinding {
    /// Channel name (for logs and role reports).
    pub channel: String,
    /// Port label, usually the PE name.
    pub label: String,
    /// Which end the task drives.
    pub role: SwRole,
    /// Bus base address of the channel's mailbox adapter.
    pub base: u64,
    /// Driver configuration for this endpoint.
    pub driver: DriverConfig,
}

/// A CPU subsystem: one RTOS instance, one bus-master port, one IRQ line.
pub struct Cpu {
    sim: SimHandle,
    /// The RTOS scheduling this CPU's tasks.
    pub rtos: Rtos,
    bus: OcpMasterPort,
    irq: Option<IrqController>,
    name: String,
}

impl Cpu {
    /// Creates a CPU with an RTOS, attached to the bus via `bus`.
    pub fn new(sim: &SimHandle, name: &str, bus: OcpMasterPort) -> Self {
        Cpu {
            sim: sim.clone(),
            rtos: Rtos::new(sim, name),
            bus,
            irq: None,
            name: name.to_string(),
        }
    }

    /// Wires the CPU's interrupt controller to a sideband line. ISRs run
    /// after `isr_latency`.
    pub fn attach_irq_line(&mut self, line: Signal<bool>, isr_latency: SimDur) {
        self.irq = Some(IrqController::spawn(
            &self.sim,
            &self.name,
            line,
            isr_latency,
        ));
    }

    /// The interrupt controller, when wired.
    pub fn irq(&self) -> Option<&IrqController> {
        self.irq.as_ref()
    }

    /// The CPU's bus-master port.
    pub fn bus_port(&self) -> &OcpMasterPort {
        &self.bus
    }

    /// Creates a driver semaphore hooked to the IRQ controller — use it in
    /// [`DriverConfig::irq`].
    ///
    /// # Panics
    ///
    /// Panics if no IRQ line was attached.
    pub fn irq_semaphore(&self, name: &str) -> RtosSemaphore {
        let irq = self
            .irq
            .as_ref()
            .expect("attach_irq_line before irq_semaphore");
        let sem = RtosSemaphore::new(&self.sim, &self.rtos, name, 0);
        irq.wake_semaphore(sem.clone());
        sem
    }

    /// **eSW synthesis**: runs a PE behaviour as an RTOS task with
    /// driver-backed SHIP ports (one per binding, in order).
    ///
    /// The behaviour signature matches hardware PEs exactly, so the same
    /// function/closure can be passed here and to a hardware elaboration.
    pub fn spawn_sw_pe<F>(
        &self,
        name: &str,
        prio: u8,
        bindings: Vec<SwChannelBinding>,
        behavior: F,
    ) -> TaskId
    where
        F: FnOnce(&mut ThreadCtx, Vec<ShipPort>) + Send + 'static,
    {
        let rtos = self.rtos.clone();
        let bus = self.bus.clone();
        self.rtos.spawn_task(name, prio, move |t| {
            let task = t.id();
            let ports: Vec<ShipPort> = bindings
                .iter()
                .map(|b| {
                    let ep: Arc<dyn shiptlm_ship::channel::ShipEndpoint> = match b.role {
                        SwRole::Master => {
                            SwShipMaster::new(&rtos, task, bus.clone(), b.base, b.driver.clone())
                        }
                        SwRole::Slave => {
                            SwShipSlave::new(&rtos, task, bus.clone(), b.base, b.driver.clone())
                        }
                    };
                    ShipPort::from_endpoint(ep, &b.channel, &b.label)
                })
                .collect();
            behavior(t.thread_ctx(), ports);
        })
    }
}

impl fmt::Debug for Cpu {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Cpu")
            .field("name", &self.name)
            .field("irq", &self.irq.is_some())
            .finish()
    }
}

impl SwChannelBinding {
    /// A master-side binding with a polling driver.
    pub fn master_polling(channel: &str, label: &str, base: u64, interval: SimDur) -> Self {
        SwChannelBinding {
            channel: channel.to_string(),
            label: label.to_string(),
            role: SwRole::Master,
            base,
            driver: DriverConfig::polling(interval),
        }
    }

    /// A slave-side binding with a polling driver.
    pub fn slave_polling(channel: &str, label: &str, base: u64, interval: SimDur) -> Self {
        SwChannelBinding {
            channel: channel.to_string(),
            label: label.to_string(),
            role: SwRole::Slave,
            base,
            driver: DriverConfig::polling(interval),
        }
    }

    /// A master-side binding with an interrupt-driven driver.
    pub fn master_irq(channel: &str, label: &str, base: u64, sem: RtosSemaphore) -> Self {
        SwChannelBinding {
            channel: channel.to_string(),
            label: label.to_string(),
            role: SwRole::Master,
            base,
            driver: DriverConfig::irq(sem),
        }
    }

    /// A slave-side binding with an interrupt-driven driver.
    pub fn slave_irq(channel: &str, label: &str, base: u64, sem: RtosSemaphore) -> Self {
        SwChannelBinding {
            channel: channel.to_string(),
            label: label.to_string(),
            role: SwRole::Slave,
            base,
            driver: DriverConfig::irq(sem),
        }
    }

    /// Overrides the driver's burst size.
    pub fn with_burst(mut self, burst_bytes: usize) -> Self {
        self.driver.burst_bytes = burst_bytes;
        self
    }
}
