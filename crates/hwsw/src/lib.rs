//! # shiptlm-hwsw
//!
//! The HW/SW half of the `shiptlm` design flow (Klingauf, DATE 2005, §4):
//! SW synthesis and fully transaction-based HW/SW communication.
//!
//! * [`rtos`] — a priority-preemptive RTOS simulator (tasks, semaphores,
//!   mailboxes) standing in for the embedded Linux of the paper's prototype;
//! * [`irq`] — sideband-signal interrupt dispatch;
//! * [`driver`] — the SW adapter: device driver + SHIP communication
//!   library implementing the four channel calls over memory-mapped I/O;
//! * [`cpu`] — the CPU subsystem and the eSW-synthesis entry point
//!   [`Cpu::spawn_sw_pe`](cpu::Cpu::spawn_sw_pe), which runs unchanged PE
//!   source as an RTOS task with driver-backed SHIP ports.
//!
//! The HW adapter half of the interface lives in
//! [`shiptlm_cam::wrapper::ShipSlaveAdapter`] — the same mailbox used for
//! HW↔HW channel mapping, with its sideband wired to the CPU's interrupt
//! controller.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cpu;
pub mod driver;
pub mod irq;
pub mod rtos;

/// Commonly used HW/SW items.
pub mod prelude {
    pub use crate::cpu::{Cpu, SwChannelBinding, SwRole};
    pub use crate::driver::{DriverConfig, NotifyMode, SwShipMaster, SwShipSlave};
    pub use crate::irq::IrqController;
    pub use crate::rtos::{
        Rtos, RtosMailbox, RtosMutex, RtosSemaphore, RtosStats, TaskCtx, TaskId,
    };
}
