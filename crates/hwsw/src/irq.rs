//! Interrupt handling: sideband signal → ISR → RTOS wakeup.
//!
//! The paper's HW adapter signals the SW side through "shared memory and
//! sideband signals" (§4). The [`IrqController`] watches a level-sensitive
//! sideband [`Signal<bool>`] and invokes registered handlers on every rising
//! level; handlers typically give an [`RtosSemaphore`] to wake the device
//! driver task.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use shiptlm_kernel::signal::Signal;
use shiptlm_kernel::sim::SimHandle;
use shiptlm_kernel::time::SimDur;

use crate::rtos::RtosSemaphore;

type IrqHandler = Box<dyn FnMut() + Send>;

/// Watches a sideband line and dispatches ISRs.
pub struct IrqController {
    handlers: Arc<Mutex<Vec<IrqHandler>>>,
    fired: Arc<AtomicU64>,
}

impl IrqController {
    /// Spawns the controller on `line`. `isr_latency` models interrupt entry
    /// overhead before handlers run.
    pub fn spawn(sim: &SimHandle, name: &str, line: Signal<bool>, isr_latency: SimDur) -> Self {
        let handlers: Arc<Mutex<Vec<IrqHandler>>> = Arc::new(Mutex::new(Vec::new()));
        let fired = Arc::new(AtomicU64::new(0));
        let h = Arc::clone(&handlers);
        let f = Arc::clone(&fired);
        sim.spawn_thread(&format!("{name}.irq"), move |ctx| {
            let changed = line.changed_event();
            loop {
                ctx.wait(&changed);
                if !line.read() {
                    continue; // falling edge
                }
                if !isr_latency.is_zero() {
                    ctx.wait_for(isr_latency);
                }
                f.fetch_add(1, Ordering::Relaxed);
                let mut hs = h.lock().unwrap_or_else(|e| e.into_inner());
                for handler in hs.iter_mut() {
                    handler();
                }
            }
        });
        IrqController { handlers, fired }
    }

    /// Registers a handler invoked on every rising level.
    pub fn on_irq<F: FnMut() + Send + 'static>(&self, handler: F) {
        self.handlers
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(Box::new(handler));
    }

    /// Registers a handler that gives `sem` on every interrupt — the common
    /// driver-wakeup pattern.
    pub fn wake_semaphore(&self, sem: RtosSemaphore) {
        self.on_irq(move || sem.give());
    }

    /// Number of interrupts dispatched so far.
    pub fn count(&self) -> u64 {
        self.fired.load(Ordering::Relaxed)
    }
}

impl fmt::Debug for IrqController {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("IrqController")
            .field("fired", &self.count())
            .finish()
    }
}
