//! A small RTOS simulator: priority-preemptive tasks on one CPU.
//!
//! The paper's eSW generation (§4, following Herrera et al. [3]) replaces
//! SystemC library elements "for behaviourally equivalent procedures based on
//! RTOS functions". This module provides those RTOS functions: tasks with
//! static priorities, preemptive scheduling, sleeping and CPU-time
//! accounting. Exactly one task runs at any simulated instant; a
//! higher-priority task becoming ready preempts the running one at its next
//! preemption point (every [`TaskCtx::execute`] chunk is preemptible).

use std::fmt;
use std::sync::{Arc, Mutex};

use shiptlm_kernel::event::Event;
use shiptlm_kernel::process::ThreadCtx;
use shiptlm_kernel::sim::SimHandle;
use shiptlm_kernel::time::SimDur;

/// Identifies a task within one [`Rtos`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TaskId(pub usize);

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TState {
    Ready,
    Running,
    Blocked,
    Done,
}

struct TaskRec {
    name: String,
    prio: u8,
    grant: Event,
    preempt: Event,
    state: TState,
}

struct SchedState {
    tasks: Vec<TaskRec>,
    current: Option<TaskId>,
    ready: Vec<TaskId>,
    ctx_switches: u64,
    preemptions: u64,
}

struct RtosShared {
    sim: SimHandle,
    state: Mutex<SchedState>,
}

/// Scheduler counters for reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RtosStats {
    /// Number of CPU grants (context switches).
    pub ctx_switches: u64,
    /// Number of preemptions of a running task.
    pub preemptions: u64,
}

/// A priority-preemptive RTOS instance bound to one simulated CPU.
///
/// ```
/// use shiptlm_kernel::prelude::*;
/// use shiptlm_hwsw::rtos::Rtos;
///
/// let sim = Simulation::new();
/// let rtos = Rtos::new(&sim.handle(), "os");
/// rtos.spawn_task("worker", 1, |t| {
///     t.execute(SimDur::us(5));
/// });
/// sim.run();
/// assert!(rtos.stats().ctx_switches >= 1);
/// ```
#[derive(Clone)]
pub struct Rtos {
    shared: Arc<RtosShared>,
}

impl Rtos {
    /// Creates an RTOS with no tasks. `name` prefixes kernel object names.
    pub fn new(sim: &SimHandle, name: &str) -> Self {
        let _ = name;
        Rtos {
            shared: Arc::new(RtosShared {
                sim: sim.clone(),
                state: Mutex::new(SchedState {
                    tasks: Vec::new(),
                    current: None,
                    ready: Vec::new(),
                    ctx_switches: 0,
                    preemptions: 0,
                }),
            }),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, SchedState> {
        self.shared.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Scheduler counters.
    pub fn stats(&self) -> RtosStats {
        let g = self.lock();
        RtosStats {
            ctx_switches: g.ctx_switches,
            preemptions: g.preemptions,
        }
    }

    /// The priority of `task` (higher value = higher priority).
    pub fn priority(&self, task: TaskId) -> u8 {
        self.lock().tasks[task.0].prio
    }

    /// Spawns a task with the given static priority (higher value wins).
    /// The task starts ready and runs when the scheduler grants the CPU.
    pub fn spawn_task<F>(&self, name: &str, prio: u8, body: F) -> TaskId
    where
        F: FnOnce(&mut TaskCtx<'_>) + Send + 'static,
    {
        let id = {
            let mut g = self.lock();
            let id = TaskId(g.tasks.len());
            g.tasks.push(TaskRec {
                name: name.to_string(),
                prio,
                grant: self.shared.sim.event(&format!("{name}.grant")),
                preempt: self.shared.sim.event(&format!("{name}.preempt")),
                state: TState::Ready,
            });
            // Enter the ready queue immediately so sibling tasks contend
            // from the very first scheduling decision.
            g.ready.push(id);
            id
        };
        self.make_ready(id);
        let rtos = self.clone();
        self.shared.sim.spawn_thread(name, move |ctx| {
            rtos.acquire_cpu(ctx, id);
            let mut tctx = TaskCtx {
                ctx,
                rtos: rtos.clone(),
                id,
            };
            body(&mut tctx);
            rtos.task_exit(id);
        });
        id
    }

    /// Marks `task` ready; preempts the running task when outranked.
    /// Callable from ISRs and other tasks.
    pub fn make_ready(&self, task: TaskId) {
        let mut g = self.lock();
        if g.tasks[task.0].state == TState::Done {
            return;
        }
        if g.tasks[task.0].state != TState::Ready && g.tasks[task.0].state != TState::Running {
            g.tasks[task.0].state = TState::Ready;
            g.ready.push(task);
        }
        match g.current {
            Some(cur) => {
                if g.tasks[task.0].prio > g.tasks[cur.0].prio {
                    g.preemptions += 1;
                    let ev = g.tasks[cur.0].preempt.clone();
                    drop(g);
                    ev.notify_delta();
                }
            }
            None => Self::schedule_locked(&mut g),
        }
    }

    /// Picks the highest-priority ready task and grants it the CPU.
    fn schedule_locked(g: &mut SchedState) {
        if g.current.is_some() {
            return;
        }
        // Highest priority wins; FIFO among equals (the ready queue is in
        // arrival order), giving round-robin behaviour under `yield_now`.
        let max_prio = g.ready.iter().map(|t| g.tasks[t.0].prio).max();
        let winner =
            max_prio.and_then(|p| g.ready.iter().copied().find(|t| g.tasks[t.0].prio == p));
        if let Some(w) = winner {
            g.ready.retain(|t| *t != w);
            g.tasks[w.0].state = TState::Running;
            g.current = Some(w);
            g.ctx_switches += 1;
            g.tasks[w.0].grant.notify_delta();
        }
    }

    /// Blocks until `task` owns the CPU.
    pub(crate) fn acquire_cpu(&self, ctx: &mut ThreadCtx, task: TaskId) {
        loop {
            let grant = {
                let g = self.lock();
                if g.current == Some(task) {
                    return;
                }
                g.tasks[task.0].grant.clone()
            };
            ctx.wait(&grant);
        }
    }

    /// Releases the CPU, leaving `task` in the given state.
    fn release_cpu(&self, task: TaskId, next_state: TState) {
        let mut g = self.lock();
        debug_assert_eq!(g.current, Some(task), "release by non-owner");
        g.current = None;
        g.tasks[task.0].state = next_state;
        if next_state == TState::Ready {
            g.ready.push(task);
        }
        Self::schedule_locked(&mut g);
    }

    /// Blocks `task` (releasing the CPU) until `unblock` is called; used by
    /// the RTOS sync primitives.
    pub(crate) fn block_on(&self, ctx: &mut ThreadCtx, task: TaskId, event: &Event) {
        self.release_cpu(task, TState::Blocked);
        ctx.wait(event);
        self.make_ready(task);
        self.acquire_cpu(ctx, task);
    }

    /// Like `block_on` but resumes after `timeout` even without the event.
    pub(crate) fn block_on_timeout(
        &self,
        ctx: &mut ThreadCtx,
        task: TaskId,
        event: &Event,
        timeout: SimDur,
    ) {
        self.release_cpu(task, TState::Blocked);
        let _ = ctx.wait_any_for(&[event], timeout);
        self.make_ready(task);
        self.acquire_cpu(ctx, task);
    }

    /// CPU-consuming, preemptible busy time (instruction execution).
    pub(crate) fn execute(&self, ctx: &mut ThreadCtx, task: TaskId, d: SimDur) {
        if d.is_zero() {
            return;
        }
        let mut remaining = d;
        loop {
            let preempt = self.lock().tasks[task.0].preempt.clone();
            let t0 = ctx.now();
            match ctx.wait_any_for(&[&preempt], remaining) {
                None => return, // ran to completion
                Some(_) => {
                    let ran = ctx.now().since(t0);
                    remaining = if ran >= remaining {
                        return;
                    } else {
                        remaining - ran
                    };
                    // Yield the CPU to the preemptor, then continue.
                    self.release_cpu(task, TState::Ready);
                    self.acquire_cpu(ctx, task);
                }
            }
        }
    }

    /// Sleeps for `d` of wall simulation time, releasing the CPU.
    pub(crate) fn sleep(&self, ctx: &mut ThreadCtx, task: TaskId, d: SimDur) {
        self.release_cpu(task, TState::Blocked);
        ctx.wait_for(d);
        self.make_ready(task);
        self.acquire_cpu(ctx, task);
    }

    fn task_exit(&self, task: TaskId) {
        let mut g = self.lock();
        g.current = None;
        g.tasks[task.0].state = TState::Done;
        Self::schedule_locked(&mut g);
    }

    /// The name of a task.
    pub fn task_name(&self, task: TaskId) -> String {
        self.lock().tasks[task.0].name.clone()
    }

    /// Changes a task's priority at runtime (used by priority inheritance).
    /// If the task is ready and now outranks the running task, the runner is
    /// preempted at its next preemption point.
    pub fn set_priority(&self, task: TaskId, prio: u8) {
        let mut g = self.lock();
        g.tasks[task.0].prio = prio;
        if let Some(cur) = g.current {
            if cur != task && g.tasks[task.0].state == TState::Ready && prio > g.tasks[cur.0].prio {
                g.preemptions += 1;
                let ev = g.tasks[cur.0].preempt.clone();
                drop(g);
                ev.notify_delta();
            }
        }
    }
}

impl fmt::Debug for Rtos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let g = self.lock();
        f.debug_struct("Rtos")
            .field("tasks", &g.tasks.len())
            .field("current", &g.current)
            .field("ctx_switches", &g.ctx_switches)
            .finish()
    }
}

/// Execution context of an RTOS task: the handle task bodies program
/// against.
pub struct TaskCtx<'a> {
    ctx: &'a mut ThreadCtx,
    rtos: Rtos,
    id: TaskId,
}

impl<'a> TaskCtx<'a> {
    /// This task's id.
    pub fn id(&self) -> TaskId {
        self.id
    }

    /// The owning RTOS.
    pub fn rtos(&self) -> &Rtos {
        &self.rtos
    }

    /// The underlying kernel process context.
    ///
    /// Needed when calling kernel-level blocking APIs (e.g. SHIP ports)
    /// from task code; the CPU stays held for the duration, which models a
    /// stalled CPU (MMIO) — use RTOS primitives for waits that should let
    /// other tasks run.
    pub fn thread_ctx(&mut self) -> &mut ThreadCtx {
        self.ctx
    }

    /// Current simulated time.
    pub fn now(&self) -> shiptlm_kernel::time::SimTime {
        self.ctx.now()
    }

    /// Consumes `d` of CPU time; preemptible by higher-priority tasks.
    pub fn execute(&mut self, d: SimDur) {
        self.rtos.clone().execute(self.ctx, self.id, d);
    }

    /// Sleeps for `d`, releasing the CPU.
    pub fn sleep(&mut self, d: SimDur) {
        self.rtos.clone().sleep(self.ctx, self.id, d);
    }

    /// Voluntarily yields the CPU to an equal-or-higher priority ready task.
    pub fn yield_now(&mut self) {
        let rtos = self.rtos.clone();
        rtos.release_cpu(self.id, TState::Ready);
        rtos.acquire_cpu(self.ctx, self.id);
    }
}

impl fmt::Debug for TaskCtx<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TaskCtx").field("id", &self.id).finish()
    }
}

/// A counting semaphore whose `take` releases the CPU while blocked.
/// `give` is callable from ISRs and other tasks.
#[derive(Clone)]
pub struct RtosSemaphore {
    rtos: Rtos,
    count: Arc<Mutex<usize>>,
    freed: Event,
}

impl RtosSemaphore {
    /// Creates a semaphore with `initial` permits.
    pub fn new(sim: &SimHandle, rtos: &Rtos, name: &str, initial: usize) -> Self {
        RtosSemaphore {
            rtos: rtos.clone(),
            count: Arc::new(Mutex::new(initial)),
            freed: sim.event(&format!("{name}.freed")),
        }
    }

    /// Takes one permit, blocking (and releasing the CPU) while none are
    /// available.
    pub fn take(&self, t: &mut TaskCtx<'_>) {
        let id = t.id;
        let rtos = self.rtos.clone();
        loop {
            {
                let mut c = self.count.lock().unwrap_or_else(|e| e.into_inner());
                if *c > 0 {
                    *c -= 1;
                    return;
                }
            }
            rtos.block_on(t.ctx, id, &self.freed);
        }
    }

    /// Non-blocking take.
    pub fn try_take(&self) -> bool {
        let mut c = self.count.lock().unwrap_or_else(|e| e.into_inner());
        if *c > 0 {
            *c -= 1;
            true
        } else {
            false
        }
    }

    /// Returns a permit and wakes blocked takers (ISR-safe).
    pub fn give(&self) {
        {
            let mut c = self.count.lock().unwrap_or_else(|e| e.into_inner());
            *c += 1;
        }
        self.freed.notify_delta();
    }

    /// Raw take with a deadline: gives up after `timeout`, returning `false`.
    /// Drivers use this as an IRQ-miss guard (a level-sensitive sideband
    /// shared by several conditions can change without a new edge).
    pub(crate) fn take_raw_timeout(
        &self,
        ctx: &mut ThreadCtx,
        id: TaskId,
        timeout: SimDur,
    ) -> bool {
        {
            let mut c = self.count.lock().unwrap_or_else(|e| e.into_inner());
            if *c > 0 {
                *c -= 1;
                return true;
            }
        }
        self.rtos.block_on_timeout(ctx, id, &self.freed, timeout);
        let mut c = self.count.lock().unwrap_or_else(|e| e.into_inner());
        if *c > 0 {
            *c -= 1;
            true
        } else {
            false
        }
    }
}

impl fmt::Debug for RtosSemaphore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RtosSemaphore")
            .field(
                "count",
                &*self.count.lock().unwrap_or_else(|e| e.into_inner()),
            )
            .finish()
    }
}

struct MutexState {
    owner: Option<TaskId>,
    /// The owner's original priority, restored on unlock.
    owner_base_prio: u8,
}

/// A task mutex with **priority inheritance**: while a higher-priority task
/// blocks on the lock, the owner runs at the blocker's priority, bounding
/// priority inversion (the classic RTOS remedy).
#[derive(Clone)]
pub struct RtosMutex {
    rtos: Rtos,
    state: Arc<Mutex<MutexState>>,
    freed: Event,
}

impl RtosMutex {
    /// Creates an unlocked mutex.
    pub fn new(sim: &SimHandle, rtos: &Rtos, name: &str) -> Self {
        RtosMutex {
            rtos: rtos.clone(),
            state: Arc::new(Mutex::new(MutexState {
                owner: None,
                owner_base_prio: 0,
            })),
            freed: sim.event(&format!("{name}.freed")),
        }
    }

    /// Acquires the lock; while blocked, donates this task's priority to the
    /// current owner.
    pub fn lock(&self, t: &mut TaskCtx<'_>) {
        let me = t.id;
        let rtos = self.rtos.clone();
        loop {
            {
                let mut g = self.state.lock().unwrap_or_else(|e| e.into_inner());
                match g.owner {
                    None => {
                        g.owner = Some(me);
                        g.owner_base_prio = rtos.priority(me);
                        return;
                    }
                    Some(owner) => {
                        // Priority inheritance: boost the owner to at least
                        // this blocker's priority.
                        let mine = rtos.priority(me);
                        if rtos.priority(owner) < mine {
                            drop(g);
                            rtos.set_priority(owner, mine);
                        }
                    }
                }
            }
            rtos.block_on(t.ctx, me, &self.freed);
        }
    }

    /// Releases the lock, restoring the owner's base priority.
    ///
    /// # Panics
    ///
    /// Panics when called by a task that does not hold the lock.
    pub fn unlock(&self, t: &mut TaskCtx<'_>) {
        let me = t.id;
        let base = {
            let mut g = self.state.lock().unwrap_or_else(|e| e.into_inner());
            assert_eq!(g.owner, Some(me), "unlock of a mutex not held");
            g.owner = None;
            g.owner_base_prio
        };
        self.rtos.set_priority(me, base);
        self.freed.notify_delta();
        // Let a released higher-priority waiter claim the lock immediately.
        t.yield_now();
    }

    /// The current owner, if any.
    pub fn owner(&self) -> Option<TaskId> {
        self.state.lock().unwrap_or_else(|e| e.into_inner()).owner
    }
}

impl fmt::Debug for RtosMutex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RtosMutex")
            .field("owner", &self.owner())
            .finish()
    }
}

/// A typed message queue between tasks (and ISRs on the send side).
#[derive(Clone)]
pub struct RtosMailbox<T> {
    rtos: Rtos,
    queue: Arc<Mutex<std::collections::VecDeque<T>>>,
    posted: Event,
}

impl<T: Send + 'static> RtosMailbox<T> {
    /// Creates an unbounded mailbox.
    pub fn new(sim: &SimHandle, rtos: &Rtos, name: &str) -> Self {
        RtosMailbox {
            rtos: rtos.clone(),
            queue: Arc::new(Mutex::new(std::collections::VecDeque::new())),
            posted: sim.event(&format!("{name}.posted")),
        }
    }

    /// Posts a message (ISR-safe, never blocks).
    pub fn post(&self, msg: T) {
        self.queue
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push_back(msg);
        self.posted.notify_delta();
    }

    /// Receives the next message, blocking (CPU released) while empty.
    pub fn pend(&self, t: &mut TaskCtx<'_>) -> T {
        let id = t.id;
        let rtos = self.rtos.clone();
        loop {
            if let Some(m) = self
                .queue
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .pop_front()
            {
                return m;
            }
            rtos.block_on(t.ctx, id, &self.posted);
        }
    }

    /// Non-blocking receive.
    pub fn try_pend(&self) -> Option<T> {
        self.queue
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .pop_front()
    }
}

impl<T> fmt::Debug for RtosMailbox<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RtosMailbox")
            .field(
                "pending",
                &self.queue.lock().unwrap_or_else(|e| e.into_inner()).len(),
            )
            .finish()
    }
}
