//! The SW adapter: device driver + SHIP communication library (paper §4).
//!
//! "The SW part of the HW/SW interface consists of a device driver and a
//! small communication library. While handshaking and memory-mapping is
//! accomplished by the device driver, the communication library implements
//! the SHIP channel interface method calls."
//!
//! Both endpoints here implement [`ShipEndpoint`], so embedded-software PEs
//! use the exact same [`ShipPort`](shiptlm_ship::channel::ShipPort) calls as
//! their hardware incarnations — the "without requiring any changes to the
//! source code" constraint.

use std::fmt;
use std::sync::{Arc, OnceLock};

use shiptlm_cam::wrapper::{
    regs, DOORBELL_DATA, DOORBELL_REPLY_ACK, DOORBELL_REPLY_SET, DOORBELL_REQUEST, DOORBELL_RX_ACK,
    STATUS_REPLY_READY, STATUS_RX_PENDING, STATUS_RX_SPACE,
};
use shiptlm_kernel::liveness::EndpointId;
use shiptlm_kernel::process::ThreadCtx;
use shiptlm_kernel::time::{SimDur, SimTime};
use shiptlm_kernel::txn::{TxnLevel, TxnSpan};
use shiptlm_ocp::error::OcpError;
use shiptlm_ocp::tl::OcpMasterPort;
use shiptlm_ship::bytes::ShipBytes;
use shiptlm_ship::channel::ShipEndpoint;
use shiptlm_ship::error::ShipError;

use crate::rtos::{Rtos, RtosSemaphore, TaskId};

/// How the driver learns about device state changes.
#[derive(Debug, Clone)]
pub enum NotifyMode {
    /// Poll the STATUS register, sleeping between polls (CPU released).
    Polling {
        /// Sleep between status reads.
        interval: SimDur,
    },
    /// Block on a semaphore given by the ISR wired to the adapter sideband.
    Irq {
        /// Semaphore the ISR gives.
        sem: RtosSemaphore,
    },
}

/// Driver tuning parameters.
#[derive(Debug, Clone)]
pub struct DriverConfig {
    /// Bytes per bus burst when moving message payloads.
    pub burst_bytes: usize,
    /// CPU time charged per driver entry (call overhead).
    pub call_overhead: SimDur,
    /// CPU time charged per chunk loop iteration (copy loop overhead).
    pub per_chunk_overhead: SimDur,
    /// Wakeup mechanism.
    pub notify: NotifyMode,
}

impl DriverConfig {
    /// A polling driver with typical overheads.
    pub fn polling(interval: SimDur) -> Self {
        DriverConfig {
            burst_bytes: 64,
            call_overhead: SimDur::ns(200),
            per_chunk_overhead: SimDur::ns(20),
            notify: NotifyMode::Polling { interval },
        }
    }

    /// An interrupt-driven driver with typical overheads.
    pub fn irq(sem: RtosSemaphore) -> Self {
        DriverConfig {
            burst_bytes: 64,
            call_overhead: SimDur::ns(300),
            per_chunk_overhead: SimDur::ns(20),
            notify: NotifyMode::Irq { sem },
        }
    }
}

/// Fallback re-check period for interrupt-driven waits.
const IRQ_GUARD: SimDur = SimDur::us(10);

fn bus_err(e: OcpError) -> ShipError {
    ShipError::Protocol(format!("driver bus access failed: {e}"))
}

/// Common driver plumbing: MMIO helpers, status waits, CPU accounting.
struct DriverCore {
    rtos: Rtos,
    task: TaskId,
    bus: OcpMasterPort,
    base: u64,
    cfg: DriverConfig,
    /// Which SHIP role this driver plays (`master` / `slave`).
    role: &'static str,
    /// Liveness identity, registered on first blocking call.
    ep: OnceLock<EndpointId>,
    /// Interned label for the transaction recorder.
    label: Arc<str>,
}

impl DriverCore {
    fn new(
        rtos: &Rtos,
        task: TaskId,
        bus: OcpMasterPort,
        base: u64,
        cfg: DriverConfig,
        role: &'static str,
    ) -> Self {
        DriverCore {
            rtos: rtos.clone(),
            task,
            bus,
            base,
            cfg,
            role,
            ep: OnceLock::new(),
            label: Arc::from(format!("drv@{base:#x}").as_str()),
        }
    }

    /// Records one driver operation (level [`TxnLevel::Driver`]).
    fn txn(&self, ctx: &ThreadCtx, op: &'static str, start: SimTime, bytes: usize, ok: bool) {
        if !ctx.txn_enabled() {
            return;
        }
        ctx.txn_record(TxnSpan {
            level: TxnLevel::Driver,
            op,
            resource: &self.label,
            start,
            end: ctx.now(),
            bytes,
            ok,
        });
    }

    fn charge(&self, ctx: &mut ThreadCtx, d: SimDur) {
        self.rtos.execute(ctx, self.task, d);
    }

    /// Bumps one driver-side rate counter (doorbell rings, IRQ waits,
    /// status polls). One relaxed load when metrics are off.
    fn metric_count(&self, ctx: &ThreadCtx, family: &'static str) {
        if !ctx.metrics_enabled() {
            return;
        }
        ctx.metrics().counter_add(family, &self.label, 1, ctx.now());
    }

    /// Registers this driver with the liveness registry (first call) and
    /// records the calling process as its current user.
    fn note_user(&self, ctx: &mut ThreadCtx) -> EndpointId {
        let sim = ctx.sim();
        let ep = *self.ep.get_or_init(|| {
            sim.register_blocking_endpoint(&format!("sw driver @ {:#x}", self.base), self.role)
        });
        sim.endpoint_user(ep, ctx.pid());
        ep
    }

    fn read_u32(&self, ctx: &mut ThreadCtx, off: u64) -> Result<u32, ShipError> {
        self.bus.read_u32(ctx, self.base + off).map_err(bus_err)
    }

    fn write_u32(&self, ctx: &mut ThreadCtx, off: u64, v: u32) -> Result<(), ShipError> {
        if off == regs::DOORBELL {
            self.metric_count(ctx, "drv.doorbells");
        }
        self.bus.write_u32(ctx, self.base + off, v).map_err(bus_err)
    }

    /// Waits until STATUS has any bit of `mask` set. The poll/IRQ wait is
    /// recorded as a `drv.wait` span when it actually blocked.
    fn wait_status(&self, ctx: &mut ThreadCtx, mask: u32) -> Result<(), ShipError> {
        let ep = self.note_user(ctx);
        let sim = ctx.sim();
        let start = ctx.now();
        let mut noted = false;
        loop {
            let status = self.read_u32(ctx, regs::STATUS)?;
            if status & mask != 0 {
                if noted {
                    sim.endpoint_note(ep, None);
                    self.txn(ctx, "drv.wait", start, 0, true);
                }
                return Ok(());
            }
            if !noted {
                let what = if mask & STATUS_REPLY_READY != 0 {
                    "awaiting reply"
                } else if mask & STATUS_RX_PENDING != 0 {
                    "awaiting message"
                } else {
                    "awaiting mailbox space"
                };
                sim.endpoint_note(ep, Some(what.to_string()));
                noted = true;
            }
            match &self.cfg.notify {
                NotifyMode::Polling { interval } => {
                    self.metric_count(ctx, "drv.polls");
                    self.rtos.sleep(ctx, self.task, *interval);
                }
                NotifyMode::Irq { sem } => {
                    self.metric_count(ctx, "drv.irq_waits");
                    // IRQ-miss guard: the shared level-sensitive sideband may
                    // not re-edge for our condition; fall back to a re-check.
                    let _ = sem.take_raw_timeout(ctx, self.task, IRQ_GUARD);
                }
            }
        }
    }

    fn write_window(&self, ctx: &mut ThreadCtx, win: u64, bytes: &[u8]) -> Result<(), ShipError> {
        for (i, chunk) in bytes.chunks(self.cfg.burst_bytes).enumerate() {
            self.charge(ctx, self.cfg.per_chunk_overhead);
            let addr = self.base + win + (i * self.cfg.burst_bytes) as u64;
            self.bus.write(ctx, addr, chunk.to_vec()).map_err(bus_err)?;
        }
        Ok(())
    }

    fn read_window(&self, ctx: &mut ThreadCtx, win: u64, len: usize) -> Result<Vec<u8>, ShipError> {
        let mut out = Vec::with_capacity(len);
        let mut off = 0;
        while off < len {
            self.charge(ctx, self.cfg.per_chunk_overhead);
            let n = (len - off).min(self.cfg.burst_bytes);
            let chunk = self
                .bus
                .read(ctx, self.base + win + off as u64, n)
                .map_err(bus_err)?;
            out.extend_from_slice(&chunk);
            off += n;
        }
        Ok(out)
    }
}

/// SW **master** endpoint: an eSW task sending/requesting to a HW slave
/// behind a mailbox adapter at `base`.
pub struct SwShipMaster {
    core: DriverCore,
}

impl SwShipMaster {
    /// Creates the endpoint for `task` on `rtos`, transacting through `bus`
    /// against the adapter mapped at `base`.
    pub fn new(
        rtos: &Rtos,
        task: TaskId,
        bus: OcpMasterPort,
        base: u64,
        cfg: DriverConfig,
    ) -> Arc<Self> {
        Arc::new(SwShipMaster {
            core: DriverCore::new(rtos, task, bus, base, cfg, "master"),
        })
    }

    fn push(&self, ctx: &mut ThreadCtx, bytes: &[u8], doorbell: u32) -> Result<(), ShipError> {
        let c = &self.core;
        c.charge(ctx, c.cfg.call_overhead);
        c.wait_status(ctx, STATUS_RX_SPACE)?;
        c.write_u32(ctx, regs::TX_LEN, bytes.len() as u32)?;
        c.write_window(ctx, regs::TX_WIN, bytes)?;
        c.write_u32(ctx, regs::DOORBELL, doorbell)?;
        Ok(())
    }
}

impl ShipEndpoint for SwShipMaster {
    fn send_bytes(&self, ctx: &mut ThreadCtx, bytes: ShipBytes) -> Result<(), ShipError> {
        let start = ctx.now();
        let result = self.push(ctx, &bytes, DOORBELL_DATA);
        self.core
            .txn(ctx, "drv.send", start, bytes.len(), result.is_ok());
        result
    }

    fn recv_bytes(&self, _ctx: &mut ThreadCtx) -> Result<ShipBytes, ShipError> {
        Err(ShipError::Protocol(
            "sw master endpoints support send/request only".into(),
        ))
    }

    fn request_bytes(&self, ctx: &mut ThreadCtx, bytes: ShipBytes) -> Result<ShipBytes, ShipError> {
        let start = ctx.now();
        let result = (|| {
            self.push(ctx, &bytes, DOORBELL_REQUEST)?;
            let c = &self.core;
            c.wait_status(ctx, STATUS_REPLY_READY)?;
            c.charge(ctx, c.cfg.call_overhead);
            let len = c.read_u32(ctx, regs::REPLY_LEN)? as usize;
            let reply = c.read_window(ctx, regs::REPLY_WIN, len)?;
            c.write_u32(ctx, regs::DOORBELL, DOORBELL_REPLY_ACK)?;
            Ok(ShipBytes::from(reply))
        })();
        self.core.txn(
            ctx,
            "drv.request",
            start,
            bytes.len() + result.as_ref().map_or(0, |r: &ShipBytes| r.len()),
            result.is_ok(),
        );
        result
    }

    fn reply_bytes(&self, _ctx: &mut ThreadCtx, _bytes: ShipBytes) -> Result<(), ShipError> {
        Err(ShipError::Protocol(
            "sw master endpoints support send/request only".into(),
        ))
    }
}

impl fmt::Debug for SwShipMaster {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SwShipMaster")
            .field("base", &format_args!("{:#x}", self.core.base))
            .finish()
    }
}

/// SW **slave** endpoint: an eSW task receiving/replying behind a mailbox
/// adapter that a HW master fills over the bus.
pub struct SwShipSlave {
    core: DriverCore,
}

impl SwShipSlave {
    /// Creates the endpoint for `task` on `rtos`, draining the adapter
    /// mapped at `base` through `bus`.
    pub fn new(
        rtos: &Rtos,
        task: TaskId,
        bus: OcpMasterPort,
        base: u64,
        cfg: DriverConfig,
    ) -> Arc<Self> {
        Arc::new(SwShipSlave {
            core: DriverCore::new(rtos, task, bus, base, cfg, "slave"),
        })
    }
}

impl ShipEndpoint for SwShipSlave {
    fn send_bytes(&self, _ctx: &mut ThreadCtx, _bytes: ShipBytes) -> Result<(), ShipError> {
        Err(ShipError::Protocol(
            "sw slave endpoints support recv/reply only".into(),
        ))
    }

    fn recv_bytes(&self, ctx: &mut ThreadCtx) -> Result<ShipBytes, ShipError> {
        let start = ctx.now();
        let result = (|| {
            let c = &self.core;
            c.charge(ctx, c.cfg.call_overhead);
            c.wait_status(ctx, STATUS_RX_PENDING)?;
            let len = c.read_u32(ctx, regs::RX_LEN)? as usize;
            let bytes = c.read_window(ctx, regs::RX_WIN, len)?;
            c.write_u32(ctx, regs::DOORBELL, DOORBELL_RX_ACK)?;
            Ok(ShipBytes::from(bytes))
        })();
        self.core.txn(
            ctx,
            "drv.recv",
            start,
            result.as_ref().map_or(0, |b: &ShipBytes| b.len()),
            result.is_ok(),
        );
        result
    }

    fn request_bytes(
        &self,
        _ctx: &mut ThreadCtx,
        _bytes: ShipBytes,
    ) -> Result<ShipBytes, ShipError> {
        Err(ShipError::Protocol(
            "sw slave endpoints support recv/reply only".into(),
        ))
    }

    fn reply_bytes(&self, ctx: &mut ThreadCtx, bytes: ShipBytes) -> Result<(), ShipError> {
        let start = ctx.now();
        let result = (|| {
            let c = &self.core;
            c.note_user(ctx);
            c.charge(ctx, c.cfg.call_overhead);
            // Wait for the previous reply (if any) to be consumed.
            loop {
                let status = c.read_u32(ctx, regs::STATUS)?;
                if status & STATUS_REPLY_READY == 0 {
                    break;
                }
                match &c.cfg.notify {
                    NotifyMode::Polling { interval } => c.rtos.sleep(ctx, c.task, *interval),
                    NotifyMode::Irq { sem } => {
                        let _ = sem.take_raw_timeout(ctx, c.task, IRQ_GUARD);
                    }
                }
            }
            c.write_u32(ctx, regs::SET_REPLY_LEN, bytes.len() as u32)?;
            c.write_window(ctx, regs::REPLY_WIN, &bytes)?;
            c.write_u32(ctx, regs::DOORBELL, DOORBELL_REPLY_SET)?;
            Ok(())
        })();
        self.core
            .txn(ctx, "drv.reply", start, bytes.len(), result.is_ok());
        result
    }
}

impl fmt::Debug for SwShipSlave {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SwShipSlave")
            .field("base", &format_args!("{:#x}", self.core.base))
            .finish()
    }
}
