//! The full HW/SW communication path (paper §4): an eSW task on the RTOS
//! talks to hardware PEs through the device driver, bus and mailbox adapter
//! — with the *same PE source* used on both sides of the partition.

use std::sync::{Arc, Mutex};

use shiptlm_cam::prelude::*;
use shiptlm_hwsw::prelude::*;
use shiptlm_kernel::prelude::*;
use shiptlm_ocp::prelude::*;
use shiptlm_ship::prelude::*;

const ACC_BASE: u64 = 0x1000_0000;

/// The accelerator PE behaviour — written once, used in HW and SW tests.
fn accelerator_pe(ctx: &mut ThreadCtx, ports: Vec<ShipPort>) {
    let port = &ports[0];
    loop {
        let Ok(data) = port.recv::<Vec<u8>>(ctx) else {
            return;
        };
        if data.is_empty() {
            return; // poison pill
        }
        // "Encrypt": xor with a rolling key.
        let out: Vec<u8> = data
            .iter()
            .enumerate()
            .map(|(i, b)| b ^ (i as u8).wrapping_mul(31).wrapping_add(7))
            .collect();
        port.reply(ctx, &out).unwrap();
    }
}

/// The control PE behaviour — also written once.
fn control_pe(
    blocks: u32,
    results: Arc<Mutex<Vec<Vec<u8>>>>,
) -> impl FnOnce(&mut ThreadCtx, Vec<ShipPort>) + Send {
    move |ctx, ports| {
        let port = &ports[0];
        for i in 0..blocks {
            let data: Vec<u8> = (0..64u8).map(|b| b.wrapping_add(i as u8)).collect();
            // request/reply is two logical ops: the accelerator receives the
            // request via recv and answers via reply.
            let enc: Vec<u8> = port.request(ctx, &data).unwrap();
            results.lock().unwrap().push(enc);
        }
        let _ = port.send(ctx, &Vec::<u8>::new()); // poison pill
    }
}

/// Builds the HW side: PLB bus + mailbox adapter + HW accelerator PE.
fn build_hw_side(sim: &Simulation, sideband: Option<Signal<bool>>) -> (Arc<CcatbBus>, ShipPort) {
    let h = sim.handle();
    let mut bus = CcatbBus::new(&h, BusConfig::plb("plb"));
    let pending = map_channel(
        &h,
        "ctl2acc",
        ACC_BASE,
        WrapperConfig::default(),
        ("ctl", "acc"),
    );
    if let Some(sb) = sideband {
        pending.adapter.attach_sideband(sb);
    }
    bus.map_slave(
        ACC_BASE..ACC_BASE + ADAPTER_SIZE,
        pending.adapter.clone(),
        true,
    );
    let bus = Arc::new(bus);
    (bus, pending.slave_port.clone())
}

fn reference_encryption(blocks: u32) -> Vec<Vec<u8>> {
    (0..blocks)
        .map(|i| {
            (0..64u8)
                .map(|b| b.wrapping_add(i as u8))
                .enumerate()
                .map(|(j, b)| b ^ (j as u8).wrapping_mul(31).wrapping_add(7))
                .collect()
        })
        .collect()
}

#[test]
fn sw_master_to_hw_slave_polling() {
    let sim = Simulation::new();
    let (bus, acc_port) = build_hw_side(&sim, None);
    // HW accelerator PE runs as a plain kernel process.
    sim.spawn_thread("acc", move |ctx| accelerator_pe(ctx, vec![acc_port]));
    // SW control task on the CPU with a polling driver.
    let cpu = Cpu::new(&sim.handle(), "cpu0", bus.master_port(MasterId(0)));
    let results = Arc::new(Mutex::new(Vec::new()));
    cpu.spawn_sw_pe(
        "ctl",
        3,
        vec![SwChannelBinding::master_polling(
            "ctl2acc",
            "ctl",
            ACC_BASE,
            SimDur::us(1),
        )],
        control_pe(4, Arc::clone(&results)),
    );
    let r = sim.run();
    assert_eq!(r.reason, StopReason::Starved);
    assert_eq!(*results.lock().unwrap(), reference_encryption(4));
    assert!(
        bus.stats().transactions > 20,
        "driver must generate bus traffic"
    );
}

#[test]
fn sw_master_to_hw_slave_irq_driven() {
    let sim = Simulation::new();
    let h = sim.handle();
    let sideband = sim.signal("irq_line", false);
    let (bus, acc_port) = build_hw_side(&sim, Some(sideband.clone()));
    sim.spawn_thread("acc", move |ctx| accelerator_pe(ctx, vec![acc_port]));

    let mut cpu = Cpu::new(&h, "cpu0", bus.master_port(MasterId(0)));
    cpu.attach_irq_line(sideband, SimDur::ns(500));
    let sem = cpu.irq_semaphore("acc_irq");
    let results = Arc::new(Mutex::new(Vec::new()));
    cpu.spawn_sw_pe(
        "ctl",
        3,
        vec![SwChannelBinding::master_irq(
            "ctl2acc", "ctl", ACC_BASE, sem,
        )],
        control_pe(4, Arc::clone(&results)),
    );
    let r = sim.run();
    assert_eq!(r.reason, StopReason::Starved);
    assert_eq!(*results.lock().unwrap(), reference_encryption(4));
    assert!(
        cpu.irq().unwrap().count() >= 1,
        "the sideband must have interrupted the CPU"
    );
}

#[test]
fn irq_driver_is_not_slower_than_coarse_polling() {
    // With a coarse polling interval, IRQ-driven wakeups should complete the
    // workload at least as fast (they wake exactly on reply-ready).
    // A slow accelerator (30 us per block) makes the wakeup policy matter:
    // a coarse poller oversleeps, the IRQ path wakes exactly on reply-ready.
    let slow_accelerator = |ctx: &mut ThreadCtx, port: ShipPort| loop {
        let Ok(data) = port.recv::<Vec<u8>>(ctx) else {
            return;
        };
        if data.is_empty() {
            return;
        }
        ctx.wait_for(SimDur::us(30));
        let out: Vec<u8> = data
            .iter()
            .enumerate()
            .map(|(i, b)| b ^ (i as u8).wrapping_mul(31).wrapping_add(7))
            .collect();
        port.reply(ctx, &out).unwrap();
    };
    let run = |binding: fn(&Cpu) -> SwChannelBinding, wire_irq: bool| {
        let sim = Simulation::new();
        let h = sim.handle();
        let sideband = sim.signal("irq_line", false);
        let (bus, acc_port) = build_hw_side(&sim, wire_irq.then(|| sideband.clone()));
        sim.spawn_thread("acc", move |ctx| slow_accelerator(ctx, acc_port));
        let mut cpu = Cpu::new(&h, "cpu0", bus.master_port(MasterId(0)));
        if wire_irq {
            cpu.attach_irq_line(sideband, SimDur::ns(500));
        }
        let results = Arc::new(Mutex::new(Vec::new()));
        let b = binding(&cpu);
        cpu.spawn_sw_pe("ctl", 3, vec![b], control_pe(8, Arc::clone(&results)));
        let r = sim.run();
        assert_eq!(results.lock().unwrap().len(), 8);
        r.time
    };
    let poll_time = run(
        |_cpu| SwChannelBinding::master_polling("ctl2acc", "ctl", ACC_BASE, SimDur::us(50)),
        false,
    );
    let irq_time = run(
        |cpu| SwChannelBinding::master_irq("ctl2acc", "ctl", ACC_BASE, cpu.irq_semaphore("s")),
        true,
    );
    assert!(
        irq_time <= poll_time,
        "irq {irq_time} should beat coarse polling {poll_time}"
    );
}

#[test]
fn hw_master_to_sw_slave() {
    // Reverse partition: a HW producer sends blocks; the SW task receives
    // and replies — exercising the RX drain and reply staging paths.
    let sim = Simulation::new();
    let h = sim.handle();
    let mut bus = CcatbBus::new(&h, BusConfig::plb("plb"));
    let pending = map_channel(
        &h,
        "hw2sw",
        ACC_BASE,
        WrapperConfig::default(),
        ("hwp", "swc"),
    );
    bus.map_slave(
        ACC_BASE..ACC_BASE + ADAPTER_SIZE,
        pending.adapter.clone(),
        true,
    );
    let bus = Arc::new(bus);

    // HW producer drives the master wrapper over the bus.
    let hw_port = pending.bind(&bus.master_port(MasterId(0)));
    sim.spawn_thread("hwp", move |ctx| {
        for i in 0..5u32 {
            let doubled: u32 = hw_port.request(ctx, &i).unwrap();
            assert_eq!(doubled, i * 2);
        }
    });

    // SW consumer drains the *same adapter* through the bus from the CPU.
    let cpu = Cpu::new(&h, "cpu0", bus.master_port(MasterId(1)));
    cpu.spawn_sw_pe(
        "swc",
        3,
        vec![SwChannelBinding::slave_polling(
            "hw2sw",
            "swc",
            ACC_BASE,
            SimDur::us(1),
        )],
        |ctx, ports| {
            let port = &ports[0];
            for _ in 0..5 {
                let q: u32 = port.recv(ctx).unwrap();
                port.reply(ctx, &(q * 2)).unwrap();
            }
        },
    );
    let r = sim.run();
    assert_eq!(r.reason, StopReason::Starved);
}

#[test]
fn hw_sw_logs_are_content_equivalent_to_pure_hw() {
    // The design-flow claim: moving a PE from HW to SW must not change the
    // transaction content. Run control+accelerator (a) as two HW PEs over a
    // mapped channel and (b) with control as eSW; compare logs.
    let run_hw = || {
        let sim = Simulation::new();
        let (bus, acc_port) = build_hw_side(&sim, None);
        let log = TransactionLog::new();
        acc_port.attach_recorder(log.clone());
        sim.spawn_thread("acc", move |ctx| accelerator_pe(ctx, vec![acc_port]));
        // HW control: master wrapper endpoint over the same bus/adapter.
        let ctl_port = ShipPort::from_endpoint(
            ShipBusMasterEndpoint::new(
                bus.master_port(MasterId(0)),
                ACC_BASE,
                WrapperConfig::default(),
            ),
            "ctl2acc",
            "ctl",
        );
        ctl_port.attach_recorder(log.clone());
        let results = Arc::new(Mutex::new(Vec::new()));
        let behavior = control_pe(3, Arc::clone(&results));
        sim.spawn_thread("ctl", move |ctx| behavior(ctx, vec![ctl_port]));
        sim.run();
        (log, results)
    };
    let run_sw = || {
        let sim = Simulation::new();
        let (bus, acc_port) = build_hw_side(&sim, None);
        let log = TransactionLog::new();
        acc_port.attach_recorder(log.clone());
        sim.spawn_thread("acc", move |ctx| accelerator_pe(ctx, vec![acc_port]));
        let cpu = Cpu::new(&sim.handle(), "cpu0", bus.master_port(MasterId(0)));
        let results = Arc::new(Mutex::new(Vec::new()));
        let behavior = control_pe(3, Arc::clone(&results));
        // Recorder on the SW port: spawn_sw_pe builds ports internally, so
        // wrap the behaviour to attach the recorder first.
        let log2 = log.clone();
        cpu.spawn_sw_pe(
            "ctl",
            3,
            vec![SwChannelBinding::master_polling(
                "ctl2acc",
                "ctl",
                ACC_BASE,
                SimDur::us(1),
            )],
            move |ctx, ports| {
                ports[0].attach_recorder(log2);
                behavior(ctx, ports);
            },
        );
        sim.run();
        (log, results)
    };
    let (log_hw, res_hw) = run_hw();
    let (log_sw, res_sw) = run_sw();
    assert_eq!(*res_hw.lock().unwrap(), *res_sw.lock().unwrap());
    assert!(log_hw.content_equivalent(&log_sw).is_ok());
}
