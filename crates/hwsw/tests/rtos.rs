//! RTOS scheduler semantics: priorities, preemption, sleeping, semaphores
//! and mailboxes.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use shiptlm_hwsw::prelude::*;
use shiptlm_kernel::prelude::*;

fn log() -> (
    Arc<Mutex<Vec<String>>>,
    impl Fn(&str) + Clone + Send + 'static,
) {
    let l = Arc::new(Mutex::new(Vec::new()));
    let c = Arc::clone(&l);
    (l, move |s: &str| c.lock().unwrap().push(s.to_string()))
}

#[test]
fn one_task_runs_to_completion() {
    let sim = Simulation::new();
    let rtos = Rtos::new(&sim.handle(), "os");
    let done = Arc::new(Mutex::new(None));
    {
        let done = Arc::clone(&done);
        rtos.spawn_task("t", 1, move |t| {
            t.execute(SimDur::us(7));
            *done.lock().unwrap() = Some(t.now());
        });
    }
    sim.run();
    assert_eq!(done.lock().unwrap().unwrap(), SimTime::ZERO + SimDur::us(7));
}

#[test]
fn cpu_is_exclusive_tasks_serialize() {
    // Two equal-priority tasks each needing 10 us of CPU: total 20 us.
    let sim = Simulation::new();
    let rtos = Rtos::new(&sim.handle(), "os");
    for i in 0..2 {
        rtos.spawn_task(&format!("t{i}"), 1, move |t| {
            t.execute(SimDur::us(10));
        });
    }
    let r = sim.run();
    assert_eq!(r.time, SimTime::ZERO + SimDur::us(20));
}

#[test]
fn higher_priority_preempts_running_task() {
    let sim = Simulation::new();
    let rtos = Rtos::new(&sim.handle(), "os");
    let (events, push) = log();
    {
        let push = push.clone();
        rtos.spawn_task("low", 1, move |t| {
            push("low:start");
            t.execute(SimDur::us(100));
            push(&format!("low:done@{}", t.now()));
        });
    }
    {
        let push = push.clone();
        rtos.spawn_task("high", 5, move |t| {
            t.sleep(SimDur::us(10)); // let low start
            push(&format!("high:woke@{}", t.now()));
            t.execute(SimDur::us(20));
            push(&format!("high:done@{}", t.now()));
        });
    }
    sim.run();
    let ev = events.lock().unwrap();
    // low starts ... wait, 'high' has higher priority so it runs first, but
    // it immediately sleeps, handing the CPU to low. At 10us high preempts.
    assert_eq!(
        *ev,
        vec![
            "low:start",
            "high:woke@10 us",
            "high:done@30 us",
            "low:done@120 us" // 100us of work + 20us stolen
        ]
    );
    assert!(rtos.stats().preemptions >= 1);
}

#[test]
fn equal_priority_does_not_preempt() {
    let sim = Simulation::new();
    let rtos = Rtos::new(&sim.handle(), "os");
    let (events, push) = log();
    {
        let push = push.clone();
        rtos.spawn_task("a", 1, move |t| {
            t.execute(SimDur::us(50));
            push(&format!("a:done@{}", t.now()));
        });
    }
    {
        let push = push.clone();
        rtos.spawn_task("b", 1, move |t| {
            t.execute(SimDur::us(10));
            push(&format!("b:done@{}", t.now()));
        });
    }
    sim.run();
    // a spawns first, runs its 50us uninterrupted, then b.
    assert_eq!(
        *events.lock().unwrap(),
        vec!["a:done@50 us", "b:done@60 us"]
    );
}

#[test]
fn sleep_releases_cpu_to_others() {
    let sim = Simulation::new();
    let rtos = Rtos::new(&sim.handle(), "os");
    let (events, push) = log();
    {
        let push = push.clone();
        rtos.spawn_task("sleeper", 5, move |t| {
            t.sleep(SimDur::us(30));
            push(&format!("sleeper:woke@{}", t.now()));
        });
    }
    {
        let push = push.clone();
        rtos.spawn_task("worker", 1, move |t| {
            t.execute(SimDur::us(10));
            push(&format!("worker:done@{}", t.now()));
        });
    }
    sim.run();
    // Worker completes during the sleeper's nap.
    assert_eq!(
        *events.lock().unwrap(),
        vec!["worker:done@10 us", "sleeper:woke@30 us"]
    );
}

#[test]
fn semaphore_blocks_and_wakes_with_cpu_release() {
    let sim = Simulation::new();
    let h = sim.handle();
    let rtos = Rtos::new(&h, "os");
    let sem = RtosSemaphore::new(&h, &rtos, "sem", 0);
    let (events, push) = log();
    {
        let (sem, push) = (sem.clone(), push.clone());
        rtos.spawn_task("waiter", 5, move |t| {
            push("waiter:taking");
            sem.take(t);
            push(&format!("waiter:got@{}", t.now()));
        });
    }
    {
        let push = push.clone();
        rtos.spawn_task("giver", 1, move |t| {
            t.execute(SimDur::us(25));
            push("giver:giving");
            sem.give();
            t.execute(SimDur::us(5));
        });
    }
    sim.run();
    let ev = events.lock().unwrap();
    assert_eq!(ev[0], "waiter:taking");
    assert_eq!(ev[1], "giver:giving");
    // The high-priority waiter wakes immediately at 25us (preempting giver).
    assert_eq!(ev[2], "waiter:got@25 us");
}

#[test]
fn mailbox_passes_typed_messages() {
    let sim = Simulation::new();
    let h = sim.handle();
    let rtos = Rtos::new(&h, "os");
    let mbox: RtosMailbox<(u32, String)> = RtosMailbox::new(&h, &rtos, "mb");
    let got = Arc::new(Mutex::new(Vec::new()));
    {
        let (mbox, got) = (mbox.clone(), Arc::clone(&got));
        rtos.spawn_task("rx", 5, move |t| {
            for _ in 0..3 {
                let m = mbox.pend(t);
                got.lock().unwrap().push(m);
            }
        });
    }
    rtos.spawn_task("tx", 1, move |t| {
        for i in 0..3u32 {
            t.execute(SimDur::us(5));
            mbox.post((i, format!("m{i}")));
        }
    });
    sim.run();
    let got = got.lock().unwrap();
    assert_eq!(got.len(), 3);
    assert_eq!(got[0], (0, "m0".into()));
    assert_eq!(got[2], (2, "m2".into()));
}

#[test]
fn preempted_work_conserves_total_cpu_time() {
    // Low needs exactly 40us CPU; high steals 3 x 10us. Low must end at
    // 40 + 30 = 70us.
    let sim = Simulation::new();
    let rtos = Rtos::new(&sim.handle(), "os");
    let low_done = Arc::new(Mutex::new(SimTime::ZERO));
    {
        let low_done = Arc::clone(&low_done);
        rtos.spawn_task("low", 1, move |t| {
            t.execute(SimDur::us(40));
            *low_done.lock().unwrap() = t.now();
        });
    }
    rtos.spawn_task("high", 9, move |t| {
        for _ in 0..3 {
            t.sleep(SimDur::us(5));
            t.execute(SimDur::us(10));
        }
    });
    sim.run();
    assert_eq!(*low_done.lock().unwrap(), SimTime::ZERO + SimDur::us(70));
}

#[test]
fn yield_now_rotates_equal_priority() {
    let sim = Simulation::new();
    let rtos = Rtos::new(&sim.handle(), "os");
    let (events, push) = log();
    for name in ["a", "b"] {
        let push = push.clone();
        rtos.spawn_task(name, 1, move |t| {
            for i in 0..3 {
                push(&format!("{name}{i}"));
                t.yield_now();
            }
        });
    }
    sim.run();
    let ev = events.lock().unwrap();
    assert_eq!(*ev, vec!["a0", "b0", "a1", "b1", "a2", "b2"]);
}

#[test]
fn stats_count_switches() {
    let sim = Simulation::new();
    let rtos = Rtos::new(&sim.handle(), "os");
    for i in 0..3 {
        rtos.spawn_task(&format!("t{i}"), 1, move |t| {
            t.execute(SimDur::us(1));
        });
    }
    sim.run();
    assert!(rtos.stats().ctx_switches >= 3);
}

#[test]
fn mutex_priority_inheritance_bounds_inversion() {
    // Classic scenario: low takes the lock; high blocks on it; medium wants
    // pure CPU. With inheritance, low runs at high's priority and finishes
    // its critical section before medium gets any CPU.
    let sim = Simulation::new();
    let h = sim.handle();
    let rtos = Rtos::new(&h, "os");
    let m = RtosMutex::new(&h, &rtos, "m");
    let (events, push) = log();
    {
        let (m, push) = (m.clone(), push.clone());
        rtos.spawn_task("low", 1, move |t| {
            m.lock(t);
            push("low:locked");
            t.execute(SimDur::us(40)); // critical section
            push(&format!("low:unlock@{}", t.now()));
            m.unlock(t);
        });
    }
    {
        let push = push.clone();
        rtos.spawn_task("medium", 5, move |t| {
            t.sleep(SimDur::us(5)); // let low take the lock
            t.execute(SimDur::us(30));
            push(&format!("medium:done@{}", t.now()));
        });
    }
    {
        let (m, push) = (m.clone(), push.clone());
        rtos.spawn_task("high", 9, move |t| {
            t.sleep(SimDur::us(2)); // let low take the lock first
            push("high:wants-lock");
            m.lock(t);
            push(&format!("high:locked@{}", t.now()));
            m.unlock(t);
        });
    }
    sim.run();
    let ev = events.lock().unwrap();
    let pos = |s: &str| ev.iter().position(|e| e.starts_with(s)).unwrap();
    // High gets the lock before medium finishes its compute: inversion bounded.
    assert!(
        pos("high:locked") < pos("medium:done"),
        "priority inversion not bounded: {ev:?}"
    );
}

#[test]
fn mutex_without_contention_is_transparent() {
    let sim = Simulation::new();
    let h = sim.handle();
    let rtos = Rtos::new(&h, "os");
    let m = RtosMutex::new(&h, &rtos, "m");
    let done = Arc::new(AtomicU64::new(0));
    {
        let (m, done) = (m.clone(), Arc::clone(&done));
        rtos.spawn_task("t", 1, move |t| {
            for _ in 0..5 {
                m.lock(t);
                t.execute(SimDur::us(1));
                m.unlock(t);
            }
            done.store(t.now().as_ps(), Ordering::SeqCst);
        });
    }
    sim.run();
    assert_eq!(done.load(Ordering::SeqCst), 5_000_000); // 5 us total
    assert_eq!(m.owner(), None);
}

#[test]
#[should_panic(expected = "process 't' panicked")]
fn mutex_unlock_by_non_owner_panics() {
    let sim = Simulation::new();
    let h = sim.handle();
    let rtos = Rtos::new(&h, "os");
    let m = RtosMutex::new(&h, &rtos, "m");
    rtos.spawn_task("t", 1, move |t| {
        m.unlock(t);
    });
    sim.run();
}

#[test]
fn set_priority_reorders_ready_queue() {
    let sim = Simulation::new();
    let rtos = Rtos::new(&sim.handle(), "os");
    let (events, push) = log();
    let rtos2 = rtos.clone();
    {
        let push = push.clone();
        rtos.spawn_task("a", 5, move |t| {
            // Demote ourselves mid-run; b should finish first afterwards.
            t.execute(SimDur::us(5));
            let me = t.id();
            t.rtos().set_priority(me, 1);
            t.yield_now();
            t.execute(SimDur::us(5));
            push(&format!("a:done@{}", t.now()));
        });
    }
    {
        let push = push.clone();
        rtos2.spawn_task("b", 3, move |t| {
            t.execute(SimDur::us(5));
            push(&format!("b:done@{}", t.now()));
        });
    }
    sim.run();
    let ev = events.lock().unwrap();
    assert_eq!(*ev, vec!["b:done@10 us", "a:done@15 us"]);
}
