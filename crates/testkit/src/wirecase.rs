//! Binary wire encoding of test cases — the compact sibling of the JSON
//! corpus format in [`crate::corpus`].
//!
//! [`ModelSpec`] and [`Motif`] implement [`ShipSerialize`] directly (they
//! are local types); [`ArchSpec`] is encoded through the free functions
//! [`put_arch`] / [`get_arch`] because both the trait and the type are
//! foreign here. The gateway's binary codec is built from these pieces, so
//! a job captured off the wire can be replayed byte-for-byte through the
//! same decoder CI exercises.
//!
//! Layout notes: every variant-bearing type leads with a `u8` tag;
//! durations travel as picosecond `u64`s; decode errors are classified
//! [`WireError`]s, never panics (see `crates/ship/tests/wire_hardening.rs`
//! for the corruption-robustness contract this format inherits).

use shiptlm_explore::prelude::ArchSpec;
use shiptlm_kernel::time::SimDur;
use shiptlm_ship::prelude::{ByteReader, ByteWriter, ShipSerialize, WireError};
use shiptlm_ship::wire;

use crate::model::{ModelSpec, Motif};
use shiptlm_cam::prelude::ArbPolicy;
use shiptlm_explore::prelude::BusKind;

impl ShipSerialize for Motif {
    fn serialize(&self, w: &mut ByteWriter) {
        match self {
            Motif::Pipeline {
                stages,
                blocks,
                bytes,
                compute_ns,
            } => {
                w.put_u8(0);
                stages.serialize(w);
                blocks.serialize(w);
                bytes.serialize(w);
                compute_ns.serialize(w);
            }
            Motif::Stream { sizes } => {
                w.put_u8(1);
                sizes.serialize(w);
            }
            Motif::Rpc {
                requests,
                bytes,
                compute_ns,
            } => {
                w.put_u8(2);
                requests.serialize(w);
                bytes.serialize(w);
                compute_ns.serialize(w);
            }
            Motif::FanOut {
                sinks,
                blocks,
                bytes,
            } => {
                w.put_u8(3);
                sinks.serialize(w);
                blocks.serialize(w);
                bytes.serialize(w);
            }
            Motif::FanIn {
                sources,
                blocks,
                bytes,
            } => {
                w.put_u8(4);
                sources.serialize(w);
                blocks.serialize(w);
                bytes.serialize(w);
            }
        }
    }

    fn deserialize(r: &mut ByteReader<'_>) -> Result<Self, WireError> {
        match r.get_u8()? {
            0 => Ok(Motif::Pipeline {
                stages: usize::deserialize(r)?,
                blocks: u32::deserialize(r)?,
                bytes: usize::deserialize(r)?,
                compute_ns: u64::deserialize(r)?,
            }),
            1 => Ok(Motif::Stream {
                sizes: Vec::deserialize(r)?,
            }),
            2 => Ok(Motif::Rpc {
                requests: u32::deserialize(r)?,
                bytes: usize::deserialize(r)?,
                compute_ns: u64::deserialize(r)?,
            }),
            3 => Ok(Motif::FanOut {
                sinks: usize::deserialize(r)?,
                blocks: u32::deserialize(r)?,
                bytes: usize::deserialize(r)?,
            }),
            4 => Ok(Motif::FanIn {
                sources: usize::deserialize(r)?,
                blocks: u32::deserialize(r)?,
                bytes: usize::deserialize(r)?,
            }),
            t => Err(WireError::InvalidValue(format!("motif tag {t:#x}"))),
        }
    }
}

impl ShipSerialize for ModelSpec {
    fn serialize(&self, w: &mut ByteWriter) {
        self.name.serialize(w);
        self.seed.serialize(w);
        self.motifs.serialize(w);
        self.app_checks.serialize(w);
    }

    fn deserialize(r: &mut ByteReader<'_>) -> Result<Self, WireError> {
        Ok(ModelSpec {
            name: String::deserialize(r)?,
            seed: u64::deserialize(r)?,
            motifs: Vec::deserialize(r)?,
            app_checks: bool::deserialize(r)?,
        })
    }
}

/// Appends `arch`'s wire representation to `w` (free function because both
/// [`ShipSerialize`] and [`ArchSpec`] are foreign to this crate).
pub fn put_arch(w: &mut ByteWriter, arch: &ArchSpec) {
    match arch.bus {
        BusKind::Plb => w.put_u8(0),
        BusKind::Opb => w.put_u8(1),
        BusKind::Crossbar => w.put_u8(2),
        BusKind::Ahb => w.put_u8(3),
        BusKind::Noc { cols, rows } => {
            w.put_u8(4);
            w.put_u8(cols);
            w.put_u8(rows);
        }
    }
    match arch.arb {
        ArbPolicy::FixedPriority => w.put_u8(0),
        ArbPolicy::RoundRobin => w.put_u8(1),
        ArbPolicy::Tdma { slot, slots } => {
            w.put_u8(2);
            w.put_u64(slot.as_ps());
            slots.serialize(w);
        }
    }
    arch.clock.map(|c| c.as_ps()).serialize(w);
    arch.burst_bytes.serialize(w);
    arch.rx_capacity.serialize(w);
    w.put_u64(arch.poll_interval.as_ps());
    arch.split_slaves.serialize(w);
}

/// Decodes an [`ArchSpec`] previously written by [`put_arch`].
///
/// # Errors
///
/// Returns a classified [`WireError`] on truncated or malformed input.
pub fn get_arch(r: &mut ByteReader<'_>) -> Result<ArchSpec, WireError> {
    let mut arch = match r.get_u8()? {
        0 => ArchSpec::plb(),
        1 => ArchSpec::opb(),
        2 => ArchSpec::crossbar(),
        3 => ArchSpec::ahb(),
        4 => {
            let cols = r.get_u8()?;
            let rows = r.get_u8()?;
            ArchSpec::noc(cols, rows)
        }
        t => return Err(WireError::InvalidValue(format!("bus tag {t:#x}"))),
    };
    arch.arb = match r.get_u8()? {
        0 => ArbPolicy::FixedPriority,
        1 => ArbPolicy::RoundRobin,
        2 => ArbPolicy::Tdma {
            slot: SimDur::ps(r.get_u64()?),
            slots: usize::deserialize(r)?,
        },
        t => return Err(WireError::InvalidValue(format!("arb tag {t:#x}"))),
    };
    arch.clock = Option::<u64>::deserialize(r)?.map(SimDur::ps);
    arch.burst_bytes = usize::deserialize(r)?;
    arch.rx_capacity = usize::deserialize(r)?;
    arch.poll_interval = SimDur::ps(r.get_u64()?);
    arch.split_slaves = bool::deserialize(r)?;
    Ok(arch)
}

/// Appends a list of architectures (u64 count + elements).
pub fn put_archs(w: &mut ByteWriter, archs: &[ArchSpec]) {
    w.put_u64(archs.len() as u64);
    for a in archs {
        put_arch(w, a);
    }
}

/// Decodes a list written by [`put_archs`], with the element count bounded
/// by the remaining input (each architecture occupies ≥ 1 byte).
///
/// # Errors
///
/// Returns a classified [`WireError`] on truncated or malformed input.
pub fn get_archs(r: &mut ByteReader<'_>) -> Result<Vec<ArchSpec>, WireError> {
    let n = r.get_u64()?;
    if n > r.remaining() as u64 {
        return Err(WireError::BadLength(n));
    }
    let mut out = Vec::with_capacity(n.min(r.remaining() as u64).min(1 << 16) as usize);
    for _ in 0..n {
        out.push(get_arch(r)?);
    }
    Ok(out)
}

// Re-exported so downstream callers can spell the module-level helpers
// without also importing `shiptlm_ship::wire`.
pub use wire::WireError as CaseWireError;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::GenConfig;
    use shiptlm_ship::serialize::{from_wire, to_wire};

    fn arch_roundtrip(a: ArchSpec) {
        let mut w = ByteWriter::new();
        put_arch(&mut w, &a);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        let back = get_arch(&mut r).unwrap();
        assert!(r.is_exhausted());
        assert_eq!(back, a);
    }

    #[test]
    fn archs_roundtrip() {
        arch_roundtrip(ArchSpec::plb());
        arch_roundtrip(
            ArchSpec::opb()
                .with_burst(16)
                .with_clock(SimDur::ns(7))
                .with_rx_capacity(3)
                .with_poll(SimDur::ns(250)),
        );
        arch_roundtrip(ArchSpec::crossbar().with_arb(ArbPolicy::Tdma {
            slot: SimDur::us(1),
            slots: 4,
        }));
        arch_roundtrip(ArchSpec::ahb());
        arch_roundtrip(ArchSpec::ahb().with_split(true).with_burst(128));
        arch_roundtrip(ArchSpec::noc(4, 4));
        arch_roundtrip(
            ArchSpec::noc(16, 16)
                .with_arb(ArbPolicy::FixedPriority)
                .with_clock(SimDur::ns(2)),
        );
    }

    #[test]
    fn random_models_roundtrip() {
        let cfg = GenConfig::default();
        for seed in 0..32u64 {
            let spec = ModelSpec::random(seed, &cfg);
            let bytes = to_wire(&spec);
            assert_eq!(from_wire::<ModelSpec>(&bytes).unwrap(), spec);
        }
    }

    #[test]
    fn corrupted_cases_fail_cleanly() {
        let spec = ModelSpec::random(99, &GenConfig::default());
        let clean = to_wire(&spec);
        for cut in 0..clean.len() {
            assert!(from_wire::<ModelSpec>(&clean[..cut]).is_err());
        }
        let mut bad = clean.clone();
        // Poison the first motif tag.
        if let Some(b) = bad.last_mut() {
            *b ^= 0xFF;
        }
        let _ = from_wire::<ModelSpec>(&bad); // must not panic
    }
}
