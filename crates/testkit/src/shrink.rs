//! Greedy shrinking of failing model specs.
//!
//! Given a [`ModelSpec`] that fails some predicate (typically "the
//! differential conformance check fails"), [`shrink`] repeatedly proposes
//! structurally smaller candidates — drop a motif, halve block counts,
//! halve payload sizes, remove pipeline stages or star arms, zero compute —
//! and keeps any candidate that still fails, iterating to a fixpoint. The
//! result is a minimal reproduction small enough to read, replay and check
//! into the regression corpus.
//!
//! The predicate is re-evaluated for every candidate, so shrinking is
//! sound for any deterministic failure; candidates that make the failure
//! disappear (e.g. removing the motif that owns a fault's target channel)
//! are simply rejected.

use crate::model::{ModelSpec, Motif};

/// Bounds for one shrink session.
#[derive(Debug, Clone)]
pub struct ShrinkConfig {
    /// Hard cap on predicate evaluations (each evaluation simulates the
    /// candidate at several abstraction levels).
    pub max_evals: usize,
}

impl Default for ShrinkConfig {
    fn default() -> Self {
        ShrinkConfig { max_evals: 200 }
    }
}

/// Outcome of a shrink session.
#[derive(Debug, Clone)]
pub struct ShrinkResult {
    /// The smallest failing spec found.
    pub minimal: ModelSpec,
    /// Predicate evaluations spent.
    pub evals: usize,
    /// Shrink steps accepted (0 means the input was already minimal under
    /// the candidate moves).
    pub accepted: usize,
}

fn halve_u32(v: u32) -> Option<u32> {
    (v > 1).then_some(v / 2)
}

fn halve_usize_floor(v: usize, floor: usize) -> Option<usize> {
    (v > floor).then_some((v / 2).max(floor))
}

/// Structurally smaller variants of one motif, most aggressive first.
fn motif_candidates(m: &Motif) -> Vec<Motif> {
    let mut out = Vec::new();
    match *m {
        Motif::Pipeline {
            stages,
            blocks,
            bytes,
            compute_ns,
        } => {
            if stages > 2 {
                out.push(Motif::Pipeline {
                    stages: 2,
                    blocks,
                    bytes,
                    compute_ns,
                });
                out.push(Motif::Pipeline {
                    stages: stages - 1,
                    blocks,
                    bytes,
                    compute_ns,
                });
            }
            if let Some(b) = halve_u32(blocks) {
                out.push(Motif::Pipeline {
                    stages,
                    blocks: b,
                    bytes,
                    compute_ns,
                });
            }
            if let Some(s) = halve_usize_floor(bytes, 1) {
                out.push(Motif::Pipeline {
                    stages,
                    blocks,
                    bytes: s,
                    compute_ns,
                });
            }
            if compute_ns > 0 {
                out.push(Motif::Pipeline {
                    stages,
                    blocks,
                    bytes,
                    compute_ns: 0,
                });
            }
        }
        Motif::Stream { ref sizes } => {
            if sizes.len() > 1 {
                out.push(Motif::Stream {
                    sizes: sizes[..1].to_vec(),
                });
                out.push(Motif::Stream {
                    sizes: sizes[..sizes.len() / 2].to_vec(),
                });
            }
            let halved: Vec<usize> = sizes.iter().map(|s| s / 2).collect();
            if halved != *sizes {
                out.push(Motif::Stream { sizes: halved });
            }
        }
        Motif::Rpc {
            requests,
            bytes,
            compute_ns,
        } => {
            if let Some(r) = halve_u32(requests) {
                out.push(Motif::Rpc {
                    requests: r,
                    bytes,
                    compute_ns,
                });
            }
            if let Some(s) = halve_usize_floor(bytes, 1) {
                out.push(Motif::Rpc {
                    requests,
                    bytes: s,
                    compute_ns,
                });
            }
            if compute_ns > 0 {
                out.push(Motif::Rpc {
                    requests,
                    bytes,
                    compute_ns: 0,
                });
            }
        }
        Motif::FanOut {
            sinks,
            blocks,
            bytes,
        } => {
            if sinks > 1 {
                out.push(Motif::FanOut {
                    sinks: 1,
                    blocks,
                    bytes,
                });
                out.push(Motif::FanOut {
                    sinks: sinks - 1,
                    blocks,
                    bytes,
                });
            }
            if let Some(b) = halve_u32(blocks) {
                out.push(Motif::FanOut {
                    sinks,
                    blocks: b,
                    bytes,
                });
            }
            if let Some(s) = halve_usize_floor(bytes, 1) {
                out.push(Motif::FanOut {
                    sinks,
                    blocks,
                    bytes: s,
                });
            }
        }
        Motif::FanIn {
            sources,
            blocks,
            bytes,
        } => {
            if sources > 1 {
                out.push(Motif::FanIn {
                    sources: 1,
                    blocks,
                    bytes,
                });
                out.push(Motif::FanIn {
                    sources: sources - 1,
                    blocks,
                    bytes,
                });
            }
            if let Some(b) = halve_u32(blocks) {
                out.push(Motif::FanIn {
                    sources,
                    blocks: b,
                    bytes,
                });
            }
            if let Some(s) = halve_usize_floor(bytes, 1) {
                out.push(Motif::FanIn {
                    sources,
                    blocks,
                    bytes: s,
                });
            }
        }
    }
    out
}

/// All single-step shrink candidates of `spec`, most aggressive first.
/// Motif *removal* candidates come before parameter shrinks, so whole
/// irrelevant subsystems disappear early.
pub fn candidates(spec: &ModelSpec) -> Vec<ModelSpec> {
    let mut out = Vec::new();
    // Note: removing motif `i` renames every later motif's PEs and
    // channels (they are index-namespaced), but payload derivation also
    // moves with the index, so the surviving traffic is renamed wholesale,
    // not altered — any index-independent failure reproduces.
    if spec.motifs.len() > 1 {
        for i in 0..spec.motifs.len() {
            let mut s = spec.clone();
            s.motifs.remove(i);
            out.push(s);
        }
    }
    for (i, m) in spec.motifs.iter().enumerate() {
        for cand in motif_candidates(m) {
            let mut s = spec.clone();
            s.motifs[i] = cand;
            out.push(s);
        }
    }
    out
}

/// Greedily shrinks `spec` while `still_fails` holds, up to
/// `cfg.max_evals` predicate evaluations.
pub fn shrink<F>(spec: &ModelSpec, cfg: &ShrinkConfig, mut still_fails: F) -> ShrinkResult
where
    F: FnMut(&ModelSpec) -> bool,
{
    let mut current = spec.clone();
    let mut evals = 0;
    let mut accepted = 0;
    'outer: loop {
        for cand in candidates(&current) {
            if evals >= cfg.max_evals {
                break 'outer;
            }
            evals += 1;
            if still_fails(&cand) {
                current = cand;
                accepted += 1;
                // Restart from the shrunk spec: its candidate set is new.
                continue 'outer;
            }
        }
        break; // fixpoint: no candidate still fails
    }
    current.name = format!("{}-min", spec.name);
    ShrinkResult {
        minimal: current,
        evals,
        accepted,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::GenConfig;

    #[test]
    fn shrinks_block_count_to_one() {
        // Predicate: fails whenever motif 0 moves at least one block.
        // Minimal failing spec must be a single motif at minimum size.
        let spec = ModelSpec {
            name: "t".into(),
            seed: 5,
            motifs: vec![
                Motif::Pipeline {
                    stages: 4,
                    blocks: 8,
                    bytes: 128,
                    compute_ns: 500,
                },
                Motif::Rpc {
                    requests: 4,
                    bytes: 64,
                    compute_ns: 100,
                },
            ],
            app_checks: true,
        };
        let r = shrink(&spec, &ShrinkConfig::default(), |s| {
            s.motifs
                .iter()
                .any(|m| matches!(m, Motif::Pipeline { blocks, .. } if *blocks >= 1))
        });
        assert_eq!(r.minimal.motifs.len(), 1);
        assert!(matches!(
            r.minimal.motifs[0],
            Motif::Pipeline {
                stages: 2,
                blocks: 1,
                bytes: 1,
                compute_ns: 0,
            }
        ));
        assert!(r.accepted > 0);
    }

    #[test]
    fn never_fails_input_returns_input() {
        let spec = ModelSpec::random(11, &GenConfig::default());
        let r = shrink(&spec, &ShrinkConfig::default(), |_| false);
        assert_eq!(r.minimal.motifs, spec.motifs);
        assert_eq!(r.accepted, 0);
    }

    #[test]
    fn eval_budget_is_respected() {
        let spec = ModelSpec::random(13, &GenConfig::default());
        let mut count = 0usize;
        let cfg = ShrinkConfig { max_evals: 7 };
        let _ = shrink(&spec, &cfg, |_| {
            count += 1;
            true
        });
        assert!(count <= 7);
    }
}
