//! Parsers for the observability export formats: Prometheus text
//! exposition (version 0.0.4) and folded flamegraph stacks.
//!
//! Both are hand-rolled and dependency-free, mirroring [`crate::json`]:
//! they exist so CI and integration tests can validate that the kernel's
//! exporters ([`MetricsSnapshot::to_prometheus`] and
//! [`HostProfile::to_folded`]) emit well-formed output, without trusting
//! the code under test to check itself.
//!
//! [`MetricsSnapshot::to_prometheus`]: shiptlm_kernel::metrics::MetricsSnapshot::to_prometheus
//! [`HostProfile::to_folded`]: shiptlm_kernel::metrics::HostProfile::to_folded

use std::collections::BTreeMap;
use std::fmt;

/// A parse failure, with the 1-based line number where it occurred.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PromError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for PromError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for PromError {}

fn err(line: usize, message: impl Into<String>) -> PromError {
    PromError {
        line,
        message: message.into(),
    }
}

/// Declared metric type from a `# TYPE` header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PromKind {
    /// Monotonic counter.
    Counter,
    /// Point-in-time gauge.
    Gauge,
    /// Fixed-bucket histogram.
    Histogram,
    /// Untyped sample.
    Untyped,
}

/// One parsed sample line: `name{labels} value`.
#[derive(Debug, Clone, PartialEq)]
pub struct PromSample {
    /// Metric name (including any `_bucket`/`_sum`/`_count` suffix).
    pub name: String,
    /// Label pairs in appearance order.
    pub labels: Vec<(String, String)>,
    /// Sample value.
    pub value: f64,
}

impl PromSample {
    /// The value of label `key`, when present.
    pub fn label(&self, key: &str) -> Option<&str> {
        self.labels
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// A parsed Prometheus text exposition.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PromText {
    /// Declared types, keyed by base metric name.
    pub types: BTreeMap<String, PromKind>,
    /// All samples in file order.
    pub samples: Vec<PromSample>,
}

impl PromText {
    /// Parses `text`, validating structure as it goes.
    ///
    /// # Errors
    ///
    /// Returns a [`PromError`] on malformed headers, names, label syntax
    /// or values, on a sample whose declared family appears without a
    /// `# TYPE` line, and on duplicate `# TYPE` lines.
    pub fn parse(text: &str) -> Result<Self, PromError> {
        let mut out = PromText::default();
        for (i, raw) in text.lines().enumerate() {
            let lineno = i + 1;
            let line = raw.trim_end();
            if line.is_empty() {
                continue;
            }
            if let Some(rest) = line.strip_prefix("# TYPE ") {
                let mut it = rest.split_whitespace();
                let name = it
                    .next()
                    .ok_or_else(|| err(lineno, "TYPE header missing metric name"))?;
                let kind = match it.next() {
                    Some("counter") => PromKind::Counter,
                    Some("gauge") => PromKind::Gauge,
                    Some("histogram") => PromKind::Histogram,
                    Some("untyped") => PromKind::Untyped,
                    Some(k) => return Err(err(lineno, format!("unknown metric type '{k}'"))),
                    None => return Err(err(lineno, "TYPE header missing type")),
                };
                if !valid_name(name) {
                    return Err(err(lineno, format!("invalid metric name '{name}'")));
                }
                if out.types.insert(name.to_string(), kind).is_some() {
                    return Err(err(lineno, format!("duplicate TYPE for '{name}'")));
                }
                continue;
            }
            if line.starts_with('#') {
                continue; // HELP or comment
            }
            out.samples.push(parse_sample(line, lineno)?);
        }
        // Every sample must belong to a declared family (the exporter
        // always writes TYPE headers; a sample without one means the
        // header logic regressed).
        for s in &out.samples {
            let base = s
                .name
                .strip_suffix("_bucket")
                .or_else(|| s.name.strip_suffix("_sum"))
                .or_else(|| s.name.strip_suffix("_count"))
                .filter(|b| out.types.get(*b) == Some(&PromKind::Histogram))
                .or_else(|| {
                    s.name
                        .strip_suffix("_total")
                        .filter(|b| out.types.get(*b) == Some(&PromKind::Counter))
                })
                .unwrap_or(&s.name);
            if !out.types.contains_key(base) {
                return Err(err(0, format!("sample '{}' has no TYPE header", s.name)));
            }
        }
        Ok(out)
    }

    /// All samples of metric `name` (exact match, suffixes included).
    pub fn samples_named<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a PromSample> {
        self.samples.iter().filter(move |s| s.name == name)
    }

    /// The single sample with `name` and label `key=value`, when present.
    pub fn sample(&self, name: &str, key: &str, value: &str) -> Option<&PromSample> {
        self.samples
            .iter()
            .find(|s| s.name == name && s.label(key) == Some(value))
    }
}

fn valid_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn parse_sample(line: &str, lineno: usize) -> Result<PromSample, PromError> {
    let name_end = line
        .find(|c: char| c == '{' || c.is_whitespace())
        .ok_or_else(|| err(lineno, "sample missing value"))?;
    let name = &line[..name_end];
    if !valid_name(name) {
        return Err(err(lineno, format!("invalid metric name '{name}'")));
    }
    let mut labels = Vec::new();
    let rest = if line[name_end..].starts_with('{') {
        let close = find_label_close(&line[name_end..])
            .ok_or_else(|| err(lineno, "unterminated label set"))?
            + name_end;
        parse_labels(&line[name_end + 1..close], lineno, &mut labels)?;
        &line[close + 1..]
    } else {
        &line[name_end..]
    };
    let mut it = rest.split_whitespace();
    let value_str = it
        .next()
        .ok_or_else(|| err(lineno, "sample missing value"))?;
    let value = match value_str {
        "+Inf" => f64::INFINITY,
        "-Inf" => f64::NEG_INFINITY,
        "NaN" => f64::NAN,
        v => v
            .parse::<f64>()
            .map_err(|_| err(lineno, format!("bad sample value '{v}'")))?,
    };
    // An optional timestamp may follow; anything after that is an error.
    if let Some(ts) = it.next() {
        if ts.parse::<i64>().is_err() {
            return Err(err(lineno, format!("bad timestamp '{ts}'")));
        }
        if it.next().is_some() {
            return Err(err(lineno, "trailing tokens after timestamp"));
        }
    }
    Ok(PromSample {
        name: name.to_string(),
        labels,
        value,
    })
}

/// Byte offset of the `}` closing a label set, honouring quoted values and
/// backslash escapes: a `}` *inside* a quoted label value is legal in the
/// 0.0.4 format (only `\`, `"` and newline are escaped) and must not
/// terminate the set. The naive `find('}')` this replaces split sample
/// lines like `m{model="a}b"} 1` in the middle of the value — reachable
/// since the gateway exposes user-supplied model names as label values.
fn find_label_close(s: &str) -> Option<usize> {
    let mut in_quotes = false;
    let mut escaped = false;
    for (idx, c) in s.char_indices() {
        if escaped {
            escaped = false;
            continue;
        }
        match c {
            '\\' if in_quotes => escaped = true,
            '"' => in_quotes = !in_quotes,
            '}' if !in_quotes => return Some(idx),
            _ => {}
        }
    }
    None
}

fn parse_labels(
    body: &str,
    lineno: usize,
    out: &mut Vec<(String, String)>,
) -> Result<(), PromError> {
    let mut rest = body;
    while !rest.is_empty() {
        let eq = rest
            .find('=')
            .ok_or_else(|| err(lineno, "label missing '='"))?;
        let key = rest[..eq].trim();
        if key.is_empty() || !valid_name(key) {
            return Err(err(lineno, format!("invalid label name '{key}'")));
        }
        let after = &rest[eq + 1..];
        if !after.starts_with('"') {
            return Err(err(lineno, "label value must be quoted"));
        }
        // Find the closing quote, honouring backslash escapes.
        let mut value = String::new();
        let mut chars = after[1..].char_indices();
        let mut end = None;
        while let Some((idx, c)) = chars.next() {
            match c {
                '"' => {
                    end = Some(idx);
                    break;
                }
                '\\' => match chars.next() {
                    Some((_, 'n')) => value.push('\n'),
                    Some((_, '\\')) => value.push('\\'),
                    Some((_, '"')) => value.push('"'),
                    _ => return Err(err(lineno, "bad escape in label value")),
                },
                c => value.push(c),
            }
        }
        let end = end.ok_or_else(|| err(lineno, "unterminated label value"))?;
        out.push((key.to_string(), value));
        rest = after[1 + end + 1..].trim_start();
        if let Some(r) = rest.strip_prefix(',') {
            rest = r.trim_start();
        } else if !rest.is_empty() {
            return Err(err(lineno, "expected ',' between labels"));
        }
    }
    Ok(())
}

/// One folded flamegraph stack: frames root-first plus a sample weight.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FoldedStack {
    /// Stack frames, outermost first.
    pub frames: Vec<String>,
    /// Sample weight (microseconds for the kernel profiler).
    pub weight: u64,
}

/// Parses folded flamegraph stacks (`a;b;c weight` per line).
///
/// # Errors
///
/// Returns a [`PromError`] on lines without a weight, with a non-numeric
/// weight, or with empty frames.
pub fn parse_folded(text: &str) -> Result<Vec<FoldedStack>, PromError> {
    let mut out = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let lineno = i + 1;
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        let (stack, weight) = line
            .rsplit_once(' ')
            .ok_or_else(|| err(lineno, "folded line missing weight"))?;
        let weight = weight
            .parse::<u64>()
            .map_err(|_| err(lineno, format!("bad weight '{weight}'")))?;
        let frames: Vec<String> = stack.split(';').map(str::to_string).collect();
        if frames.iter().any(String::is_empty) {
            return Err(err(lineno, "empty frame in stack"));
        }
        out.push(FoldedStack { frames, weight });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_counter_and_gauge_samples() {
        let text = "# TYPE shiptlm_ship_messages counter\n\
                    shiptlm_ship_messages_total{resource=\"a2b\"} 42\n\
                    # TYPE shiptlm_mbox_occupancy gauge\n\
                    shiptlm_mbox_occupancy{resource=\"mb\"} 3\n";
        let p = PromText::parse(text).unwrap();
        assert_eq!(
            p.types.get("shiptlm_ship_messages"),
            Some(&PromKind::Counter)
        );
        let s = p
            .sample("shiptlm_ship_messages_total", "resource", "a2b")
            .unwrap();
        assert_eq!(s.value, 42.0);
        assert_eq!(
            p.sample("shiptlm_mbox_occupancy", "resource", "mb")
                .unwrap()
                .value,
            3.0
        );
    }

    #[test]
    fn histogram_suffixes_resolve_to_base_type() {
        let text = "# TYPE shiptlm_bus_grant_wait_ns histogram\n\
                    shiptlm_bus_grant_wait_ns_bucket{resource=\"plb\",le=\"1\"} 2\n\
                    shiptlm_bus_grant_wait_ns_bucket{resource=\"plb\",le=\"+Inf\"} 5\n\
                    shiptlm_bus_grant_wait_ns_sum{resource=\"plb\"} 130\n\
                    shiptlm_bus_grant_wait_ns_count{resource=\"plb\"} 5\n";
        let p = PromText::parse(text).unwrap();
        assert_eq!(p.samples.len(), 4);
        let inf = p
            .samples_named("shiptlm_bus_grant_wait_ns_bucket")
            .find(|s| s.label("le") == Some("+Inf"))
            .unwrap();
        assert_eq!(inf.value, 5.0);
    }

    #[test]
    fn sample_without_type_header_is_rejected() {
        let text = "shiptlm_orphan_total{resource=\"x\"} 1\n";
        let e = PromText::parse(text).unwrap_err();
        assert!(e.message.contains("no TYPE header"), "{e}");
    }

    #[test]
    fn malformed_label_syntax_is_rejected() {
        for bad in [
            "# TYPE m counter\nm_total{resource=unquoted} 1\n",
            "# TYPE m counter\nm_total{resource=\"open} 1\n",
            "# TYPE m counter\nm_total{resource=\"v\"",
            "# TYPE m counter\nm_total{resource=\"v\"} abc\n",
        ] {
            assert!(PromText::parse(bad).is_err(), "accepted: {bad}");
        }
    }

    #[test]
    fn label_escapes_round_trip() {
        let text = "# TYPE m gauge\nm{resource=\"a\\\"b\\\\c\\nd\"} 1\n";
        let p = PromText::parse(text).unwrap();
        assert_eq!(p.samples[0].label("resource"), Some("a\"b\\c\nd"));
    }

    #[test]
    fn brace_inside_quoted_label_value_parses() {
        // `}` is legal inside a quoted value; the label set must close at
        // the *unquoted* brace.
        let text = "# TYPE m gauge\nm{model=\"a}b\",other=\"{x}\"} 7\n";
        let p = PromText::parse(text).unwrap();
        assert_eq!(p.samples[0].label("model"), Some("a}b"));
        assert_eq!(p.samples[0].label("other"), Some("{x}"));
        assert_eq!(p.samples[0].value, 7.0);
    }

    #[test]
    fn kernel_escaping_round_trips_through_the_parser() {
        // The gateway renders user-supplied model names with the kernel's
        // `prom_label`; whatever it emits must come back verbatim.
        use shiptlm_kernel::metrics::prom_label;
        let nasty = [
            "back\\slash",
            "quo\"te",
            "new\nline",
            "bra}ce{open",
            "all of \\ \" \n } , = at once",
        ];
        for original in nasty {
            let text = format!(
                "# TYPE m gauge\nm{{model=\"{}\"}} 1\n",
                prom_label(original)
            );
            let p = PromText::parse(&text).unwrap();
            assert_eq!(
                p.samples[0].label("model"),
                Some(original),
                "escaping of {original:?}"
            );
        }
    }

    #[test]
    fn parses_folded_stacks() {
        let text = "kernel;evaluate 120\nkernel;evaluate;producer 80\n\nkernel;update 5\n";
        let stacks = parse_folded(text).unwrap();
        assert_eq!(stacks.len(), 3);
        assert_eq!(stacks[1].frames, vec!["kernel", "evaluate", "producer"]);
        assert_eq!(stacks[1].weight, 80);
    }

    #[test]
    fn folded_rejects_missing_weight_and_empty_frames() {
        assert!(parse_folded("kernel;evaluate\n").is_err());
        assert!(parse_folded("kernel;;x 4\n").is_err());
        assert!(parse_folded("kernel;evaluate abc\n").is_err());
    }
}
