//! # shiptlm-testkit
//!
//! Cross-level differential conformance harness for the `shiptlm` design
//! flow (Klingauf, DATE 2005): the central promise of the systematic TLM
//! methodology is that refining a model from untimed component assembly
//! through CCATB down to the pin-accurate prototype changes *timing only*,
//! never communicated *content*. This crate tests that promise in bulk:
//!
//! * [`model`] — a seeded random generator of system models built from
//!   communication motifs (pipelines, streams, RPC pairs, fan-out/fan-in
//!   stars) with randomized payload sizes, burst patterns and compute
//!   delays;
//! * [`diff`] — the differential checker: one model is run at up to four
//!   targets (component assembly, CCATB, pin-accurate, HW/SW-partitioned)
//!   and every refined level must reproduce the reference's per-channel
//!   payload byte-streams exactly, take no less simulated time, and never
//!   hang silently;
//! * [`faults`] — fault injection (drop / duplicate / delay / corrupt) at
//!   the SHIP endpoint boundary, for asserting that transport-level faults
//!   surface as timeouts, deadlock diagnoses or equivalence failures —
//!   never as silent corruption;
//! * [`shrink`] — greedy minimization of failing models to a reproduction
//!   small enough to read and check into a corpus;
//! * [`corpus`] — the replayable JSON case format and directory loader;
//! * [`harness`] — the generate → check → shrink → persist loop with
//!   deterministic per-case seeds and env-var overrides;
//! * [`json`] / [`asserts`] — the dependency-free JSON parser and the
//!   trace/export assertion helpers shared with the workspace's
//!   integration suites;
//! * [`prom`] — parsers for the Prometheus text exposition and folded
//!   flamegraph stacks emitted by the kernel's metrics registry and host
//!   profiler.
//!
//! ## Example
//!
//! ```
//! use shiptlm_testkit::prelude::*;
//!
//! let spec = ModelSpec::random(7, &GenConfig::default());
//! let report = check_model(&spec, &CheckConfig::new(ModelSpec::random_arch(7)))
//!     .expect("generated models conform across levels");
//! assert!(report.levels >= 3);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod asserts;
pub mod corpus;
pub mod diff;
pub mod faults;
pub mod harness;
pub mod json;
pub mod model;
pub mod prom;
pub mod shrink;
pub mod wirecase;

/// One-stop imports for conformance tests.
pub mod prelude {
    pub use crate::asserts::{
        assert_chrome_export, assert_jsonl_export, assert_spans_consistent, check_chrome_trace,
        ChromeShape,
    };
    pub use crate::corpus::{CorpusCase, Expectation};
    pub use crate::diff::{check_model, CheckConfig, Failure, FailureKind, PassReport, Target};
    pub use crate::faults::{FaultKind, FaultPlan, FaultSite};
    pub use crate::harness::{
        run_conformance, shrink_failure, CaseFailure, HarnessConfig, HarnessReport,
    };
    pub use crate::json::Json;
    pub use crate::model::{GenConfig, ModelSpec, Motif};
    pub use crate::prom::{parse_folded, FoldedStack, PromKind, PromSample, PromText};
    pub use crate::shrink::{candidates, shrink, ShrinkConfig, ShrinkResult};
}
