//! A minimal, dependency-free JSON value type with a recursive-descent
//! parser and a writer.
//!
//! The workspace builds without network access to a package registry, so
//! trace exports and conformance corpus files are parsed with this module
//! instead of an external crate. It covers the JSON actually produced by the
//! stack (Chrome traces, JSONL, corpus cases): objects, arrays, strings with
//! the standard escapes, `f64` numbers, booleans and `null`.
//!
//! Note that numbers are carried as `f64`, which cannot represent every
//! `u64` losslessly — seeds and other 64-bit values are therefore stored as
//! decimal *strings* in corpus files (see [`Json::as_u64_str`]).

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (carried as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; key order is normalized (sorted).
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Parses `text` as a single JSON document.
    ///
    /// # Errors
    ///
    /// Returns a description of the first syntax error.
    pub fn parse(text: &str) -> Result<Json, String> {
        Parser::parse(text)
    }

    /// Object field lookup; `None` on non-objects or missing keys.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The string payload, when this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The array items, when this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The numeric value, when this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The boolean value, when this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Decodes a `u64` stored as a decimal string (the lossless encoding
    /// used for seeds in corpus files).
    pub fn as_u64_str(&self) -> Option<u64> {
        self.as_str().and_then(|s| s.parse().ok())
    }

    /// Builds a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Builds a number value from anything convertible to `f64`.
    pub fn num(n: impl Into<f64>) -> Json {
        Json::Num(n.into())
    }

    /// Encodes a `u64` losslessly as a decimal string value.
    pub fn u64_str(v: u64) -> Json {
        Json::Str(v.to_string())
    }

    /// Builds an object from key/value pairs.
    pub fn obj<I>(fields: I) -> Json
    where
        I: IntoIterator<Item = (&'static str, Json)>,
    {
        Json::Obj(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }
}

/// `Display` renders compact JSON (no insignificant whitespace), suitable
/// for corpus files and golden comparisons.
impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(n) => {
                if n.fract() == 0.0 && n.is_finite() && n.abs() < 9e15 {
                    write!(f, "{}", *n as i64)
                } else {
                    write!(f, "{n}")
                }
            }
            Json::Str(s) => write_json_string(f, s),
            Json::Arr(v) => {
                f.write_str("[")?;
                for (i, item) in v.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Json::Obj(m) => {
                f.write_str("{")?;
                for (i, (k, v)) in m.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_json_string(f, k)?;
                    f.write_str(":")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

fn write_json_string(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\t' => f.write_str("\\t")?,
            '\r' => f.write_str("\\r")?,
            '\u{8}' => f.write_str("\\b")?,
            '\u{c}' => f.write_str("\\f")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

struct Parser<'a> {
    s: &'a [u8],
    i: usize,
}

impl<'a> Parser<'a> {
    fn parse(text: &'a str) -> Result<Json, String> {
        let mut p = Parser {
            s: text.as_bytes(),
            i: 0,
        };
        let v = p.value()?;
        p.skip_ws();
        if p.i != p.s.len() {
            return Err(format!("trailing bytes at offset {}", p.i));
        }
        Ok(v)
    }

    fn skip_ws(&mut self) {
        while self.i < self.s.len() && self.s[self.i].is_ascii_whitespace() {
            self.i += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.s.get(self.i).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.i += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at offset {}", b as char, self.i))
        }
    }

    fn lit(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.s[self.i..].starts_with(word.as_bytes()) {
            self.i += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at offset {}", self.i))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.lit("true", Json::Bool(true)),
            Some(b'f') => self.lit("false", Json::Bool(false)),
            Some(b'n') => self.lit("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!("unexpected {other:?} at offset {}", self.i)),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.eat(b'{')?;
        let mut m = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(Json::Obj(m));
        }
        loop {
            self.skip_ws();
            let k = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            m.insert(k, self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(Json::Obj(m));
                }
                other => return Err(format!("bad object separator {other:?}")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.eat(b'[')?;
        let mut v = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(Json::Arr(v));
        }
        loop {
            v.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(Json::Arr(v));
                }
                other => return Err(format!("bad array separator {other:?}")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.i += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.i += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            if self.i + 5 > self.s.len() {
                                return Err("truncated \\u escape".into());
                            }
                            let hex = std::str::from_utf8(&self.s[self.i + 1..self.i + 5])
                                .map_err(|e| e.to_string())?;
                            let cp = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                            out.push(char::from_u32(cp).ok_or("bad \\u escape")?);
                            self.i += 4;
                        }
                        other => return Err(format!("bad escape {other:?}")),
                    }
                    self.i += 1;
                }
                Some(_) => {
                    let start = self.i;
                    while self.peek().is_some_and(|c| c != b'"' && c != b'\\') {
                        self.i += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.s[start..self.i]).map_err(|e| e.to_string())?,
                    );
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.i;
        if self.peek() == Some(b'-') {
            self.i += 1;
        }
        while self.peek().is_some_and(|c| {
            c.is_ascii_digit() || c == b'.' || c == b'e' || c == b'E' || c == b'+' || c == b'-'
        }) {
            self.i += 1;
        }
        std::str::from_utf8(&self.s[start..self.i])
            .map_err(|e| e.to_string())?
            .parse::<f64>()
            .map(Json::Num)
            .map_err(|e| format!("bad number at {start}: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_through_display() {
        let doc = Json::obj([
            ("name", Json::str("gen \"quoted\" \\ line\nbreak")),
            ("seed", Json::u64_str(u64::MAX)),
            ("n", Json::num(42.0)),
            ("frac", Json::num(1.5)),
            ("flag", Json::Bool(true)),
            ("none", Json::Null),
            (
                "items",
                Json::Arr(vec![Json::num(1.0), Json::str("x"), Json::Bool(false)]),
            ),
        ]);
        let text = doc.to_string();
        let back = Json::parse(&text).unwrap();
        assert_eq!(back, doc);
        assert_eq!(back.get("seed").unwrap().as_u64_str(), Some(u64::MAX));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(Json::parse("{\"a\":}").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("\"open").is_err());
        assert!(Json::parse("{} trailing").is_err());
    }

    #[test]
    fn integers_print_without_fraction() {
        assert_eq!(Json::num(64.0).to_string(), "64");
        assert_eq!(Json::num(0.5).to_string(), "0.5");
    }
}
