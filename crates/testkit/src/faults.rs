//! Fault injection at the SHIP endpoint boundary.
//!
//! A [`FaultPlan`] compiles into a [`PortHook`] that interposes a
//! [`FaultyEndpoint`] between PE code and the real transport (the in-memory
//! channel at the component-assembly level, the SHIP↔OCP wrapper / mailbox
//! adapter at the mapped levels). Faults target `send`, the one call every
//! motif exercises:
//!
//! * **drop** — the payload vanishes; the peer must surface a
//!   [`ShipError::Timeout`](shiptlm_ship::error::ShipError) (component
//!   assembly with a call timeout) or a bounded run with a deadlock
//!   diagnosis naming the starving PE — never a silent pass.
//! * **duplicate** — the payload is delivered twice; receivers observe a
//!   shifted stream.
//! * **delay** — the payload is held for a fixed simulated duration; must
//!   *not* change any content stream (timing-only faults are invisible to
//!   the equivalence relation).
//! * **corrupt** — one payload byte is flipped; with in-app checks disabled
//!   this is exactly the "silent corruption" the cross-level differential
//!   check must catch.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use shiptlm_explore::mapper::{PortHook, PortSite};
use shiptlm_kernel::process::ThreadCtx;
use shiptlm_kernel::time::SimDur;
use shiptlm_ship::bytes::ShipBytes;
use shiptlm_ship::channel::{ShipEndpoint, ShipPort};
use shiptlm_ship::error::ShipError;

use crate::json::Json;

/// What to do to the targeted `send`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Swallow the `nth` (0-based) send on the channel.
    DropSend {
        /// Index of the send to drop.
        nth: u64,
    },
    /// Deliver the `nth` send twice.
    DuplicateSend {
        /// Index of the send to duplicate.
        nth: u64,
    },
    /// Hold the `nth` send for `by` of simulated time before delivery.
    DelaySend {
        /// Index of the send to delay.
        nth: u64,
        /// Added simulated delay.
        by: SimDur,
    },
    /// XOR the last payload byte of the `nth` send with `0x01` (wire
    /// length prefixes stay intact, so the message still decodes).
    CorruptSend {
        /// Index of the send to corrupt.
        nth: u64,
    },
}

impl FaultKind {
    fn label(&self) -> &'static str {
        match self {
            FaultKind::DropSend { .. } => "drop",
            FaultKind::DuplicateSend { .. } => "duplicate",
            FaultKind::DelaySend { .. } => "delay",
            FaultKind::CorruptSend { .. } => "corrupt",
        }
    }
}

/// Which abstraction levels the fault is injected at.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultSite {
    /// Only at the untimed component-assembly level.
    Untimed,
    /// Only at the mapped (CCATB / pin-accurate / partitioned) levels —
    /// the CAM mailbox boundary. This is the cross-level-divergence site:
    /// the reference run stays clean.
    Mapped,
    /// At every level.
    All,
}

impl FaultSite {
    fn applies(self, mapped: bool) -> bool {
        match self {
            FaultSite::Untimed => !mapped,
            FaultSite::Mapped => mapped,
            FaultSite::All => true,
        }
    }
}

/// A complete fault to inject into one run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    /// Channel to attack.
    pub channel: String,
    /// Which send, and what happens to it.
    pub kind: FaultKind,
    /// Which levels are attacked.
    pub site: FaultSite,
}

impl FaultPlan {
    /// Compiles the plan into a [`PortHook`] for
    /// [`RunOptions::with_port_hook`](shiptlm_explore::mapper::RunOptions).
    ///
    /// Only the *sending* side of the targeted channel is wrapped; faults
    /// fire on the matching send index regardless of which PE holds the
    /// port, because only one side of a SHIP channel ever sends.
    pub fn hook(&self) -> PortHook {
        let plan = self.clone();
        let counter = Arc::new(AtomicU64::new(0));
        Arc::new(move |site: PortSite<'_>, port: ShipPort| {
            if site.channel != plan.channel || !plan.site.applies(site.mapped) {
                return port;
            }
            let kind = plan.kind;
            let counter = Arc::clone(&counter);
            port.map_endpoint(|inner| {
                Arc::new(FaultyEndpoint {
                    inner,
                    kind,
                    sends: counter,
                }) as Arc<dyn ShipEndpoint>
            })
        })
    }

    /// JSON form for corpus files.
    pub fn to_json(&self) -> Json {
        let (nth, extra) = match self.kind {
            FaultKind::DropSend { nth }
            | FaultKind::DuplicateSend { nth }
            | FaultKind::CorruptSend { nth } => (nth, None),
            FaultKind::DelaySend { nth, by } => (nth, Some(by.as_ps())),
        };
        let mut fields = vec![
            ("channel", Json::str(self.channel.clone())),
            ("kind", Json::str(self.kind.label())),
            ("nth", Json::u64_str(nth)),
            (
                "site",
                Json::str(match self.site {
                    FaultSite::Untimed => "untimed",
                    FaultSite::Mapped => "mapped",
                    FaultSite::All => "all",
                }),
            ),
        ];
        if let Some(ps) = extra {
            fields.push(("delay_ps", Json::u64_str(ps)));
        }
        Json::obj(fields)
    }

    /// Rebuilds a plan from its [`to_json`](Self::to_json) form.
    ///
    /// # Errors
    ///
    /// Returns a description of the first missing or malformed field.
    pub fn from_json(v: &Json) -> Result<FaultPlan, String> {
        let channel = v
            .get("channel")
            .and_then(Json::as_str)
            .ok_or("fault missing 'channel'")?
            .to_string();
        let nth = v
            .get("nth")
            .and_then(Json::as_u64_str)
            .ok_or("fault missing 'nth'")?;
        let kind = match v.get("kind").and_then(Json::as_str) {
            Some("drop") => FaultKind::DropSend { nth },
            Some("duplicate") => FaultKind::DuplicateSend { nth },
            Some("corrupt") => FaultKind::CorruptSend { nth },
            Some("delay") => FaultKind::DelaySend {
                nth,
                by: SimDur::ps(
                    v.get("delay_ps")
                        .and_then(Json::as_u64_str)
                        .ok_or("delay fault missing 'delay_ps'")?,
                ),
            },
            other => return Err(format!("unknown fault kind {other:?}")),
        };
        let site = match v.get("site").and_then(Json::as_str) {
            Some("untimed") => FaultSite::Untimed,
            Some("mapped") => FaultSite::Mapped,
            Some("all") => FaultSite::All,
            other => return Err(format!("unknown fault site {other:?}")),
        };
        Ok(FaultPlan {
            channel,
            kind,
            site,
        })
    }
}

/// A [`ShipEndpoint`] proxy that applies one [`FaultKind`] to the matching
/// send and forwards everything else untouched.
pub struct FaultyEndpoint {
    inner: Arc<dyn ShipEndpoint>,
    kind: FaultKind,
    sends: Arc<AtomicU64>,
}

impl std::fmt::Debug for FaultyEndpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultyEndpoint")
            .field("kind", &self.kind)
            .field("sends", &self.sends.load(Ordering::Relaxed))
            .finish()
    }
}

fn flip_last_byte(bytes: &ShipBytes) -> ShipBytes {
    let mut v = bytes.to_vec();
    if let Some(last) = v.last_mut() {
        *last ^= 0x01;
    }
    ShipBytes::from(v)
}

impl ShipEndpoint for FaultyEndpoint {
    fn send_bytes(&self, ctx: &mut ThreadCtx, bytes: ShipBytes) -> Result<(), ShipError> {
        let n = self.sends.fetch_add(1, Ordering::SeqCst);
        match self.kind {
            FaultKind::DropSend { nth } if n == nth => Ok(()),
            FaultKind::DuplicateSend { nth } if n == nth => {
                self.inner.send_bytes(ctx, bytes.clone())?;
                self.inner.send_bytes(ctx, bytes)
            }
            FaultKind::DelaySend { nth, by } if n == nth => {
                if !by.is_zero() {
                    ctx.wait_for(by);
                }
                self.inner.send_bytes(ctx, bytes)
            }
            FaultKind::CorruptSend { nth } if n == nth => {
                self.inner.send_bytes(ctx, flip_last_byte(&bytes))
            }
            _ => self.inner.send_bytes(ctx, bytes),
        }
    }

    fn recv_bytes(&self, ctx: &mut ThreadCtx) -> Result<ShipBytes, ShipError> {
        self.inner.recv_bytes(ctx)
    }

    fn request_bytes(&self, ctx: &mut ThreadCtx, bytes: ShipBytes) -> Result<ShipBytes, ShipError> {
        self.inner.request_bytes(ctx, bytes)
    }

    fn reply_bytes(&self, ctx: &mut ThreadCtx, bytes: ShipBytes) -> Result<(), ShipError> {
        self.inner.reply_bytes(ctx, bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_json_roundtrip() {
        for plan in [
            FaultPlan {
                channel: "m0.ch0".into(),
                kind: FaultKind::DropSend { nth: 2 },
                site: FaultSite::Untimed,
            },
            FaultPlan {
                channel: "m1.ch3".into(),
                kind: FaultKind::DelaySend {
                    nth: 0,
                    by: SimDur::us(7),
                },
                site: FaultSite::Mapped,
            },
            FaultPlan {
                channel: "x".into(),
                kind: FaultKind::CorruptSend { nth: 1 },
                site: FaultSite::All,
            },
        ] {
            let text = plan.to_json().to_string();
            let back = FaultPlan::from_json(&Json::parse(&text).unwrap()).unwrap();
            assert_eq!(back, plan);
        }
    }

    #[test]
    fn corrupt_flips_exactly_one_bit() {
        let b = ShipBytes::from(vec![1u8, 2, 3]);
        let c = flip_last_byte(&b);
        assert_eq!(c.as_slice(), &[1, 2, 2]);
        assert!(flip_last_byte(&ShipBytes::new()).is_empty());
    }
}
