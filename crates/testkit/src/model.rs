//! Seeded random system-model generation.
//!
//! A [`ModelSpec`] is a declarative, serializable description of a system:
//! a bag of communication *motifs* (pipelines, streams, RPC pairs, fan-out /
//! fan-in stars) with randomized payload sizes, burst counts and compute
//! delays. `to_app` elaborates it into an [`AppSpec`] whose PE behaviours
//! regenerate every payload deterministically from the model seed, so the
//! same spec produces byte-identical traffic at every abstraction level —
//! the property the differential conformance harness checks.
//!
//! Motifs own disjoint PEs and channels, which makes generated models
//! deadlock-free by construction: every motif is a DAG of blocking
//! producer/consumer loops with matched send/recv counts.

use shiptlm_cam::arb::ArbPolicy;
use shiptlm_explore::app::AppSpec;
use shiptlm_explore::arch::ArchSpec;
use shiptlm_kernel::rng::Rng;
use shiptlm_kernel::time::SimDur;
use shiptlm_ship::channel::ShipPort;

use crate::json::Json;

/// One communication motif; PEs and channels are namespaced per motif.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Motif {
    /// `src → stage… → sink` linear pipeline; stages transform
    /// (`wrapping_add(1)`) after `compute_ns` of processing time.
    Pipeline {
        /// Total PE count including source and sink (≥ 2).
        stages: usize,
        /// Blocks pushed through the pipeline.
        blocks: u32,
        /// Bytes per block.
        bytes: usize,
        /// Per-stage compute delay in nanoseconds.
        compute_ns: u64,
    },
    /// One producer → consumer stream with an explicit per-message size
    /// list (sizes may be zero).
    Stream {
        /// Payload size of each message, in order.
        sizes: Vec<usize>,
    },
    /// One client ↔ server request/reply pair; the server XOR-transforms
    /// after `compute_ns`.
    Rpc {
        /// Number of request/reply round trips.
        requests: u32,
        /// Request payload bytes.
        bytes: usize,
        /// Server compute delay in nanoseconds.
        compute_ns: u64,
    },
    /// One source feeding `sinks` independent sinks round-robin.
    FanOut {
        /// Number of sink PEs (≥ 1).
        sinks: usize,
        /// Blocks sent *per sink*.
        blocks: u32,
        /// Bytes per block.
        bytes: usize,
    },
    /// `sources` producers feeding one consumer, drained port by port.
    FanIn {
        /// Number of source PEs (≥ 1).
        sources: usize,
        /// Blocks sent per source.
        blocks: u32,
        /// Bytes per block.
        bytes: usize,
    },
}

impl Motif {
    /// Number of PEs this motif elaborates to.
    pub fn pe_count(&self) -> usize {
        match self {
            Motif::Pipeline { stages, .. } => *stages,
            Motif::Stream { .. } => 2,
            Motif::Rpc { .. } => 2,
            Motif::FanOut { sinks, .. } => sinks + 1,
            Motif::FanIn { sources, .. } => sources + 1,
        }
    }

    /// Number of channels this motif elaborates to.
    pub fn channel_count(&self) -> usize {
        match self {
            Motif::Pipeline { stages, .. } => stages - 1,
            Motif::Stream { .. } | Motif::Rpc { .. } => 1,
            Motif::FanOut { sinks, .. } => *sinks,
            Motif::FanIn { sources, .. } => *sources,
        }
    }

    /// Number of application-level messages this motif transfers (replies
    /// count separately from requests).
    pub fn message_count(&self) -> u64 {
        match self {
            Motif::Pipeline { stages, blocks, .. } => (*stages as u64 - 1) * u64::from(*blocks),
            Motif::Stream { sizes } => sizes.len() as u64,
            Motif::Rpc { requests, .. } => 2 * u64::from(*requests),
            Motif::FanOut { sinks, blocks, .. } => *sinks as u64 * u64::from(*blocks),
            Motif::FanIn {
                sources, blocks, ..
            } => *sources as u64 * u64::from(*blocks),
        }
    }

    fn kind(&self) -> &'static str {
        match self {
            Motif::Pipeline { .. } => "pipeline",
            Motif::Stream { .. } => "stream",
            Motif::Rpc { .. } => "rpc",
            Motif::FanOut { .. } => "fan_out",
            Motif::FanIn { .. } => "fan_in",
        }
    }

    fn to_json(&self) -> Json {
        let mut fields = vec![("kind", Json::str(self.kind()))];
        match self {
            Motif::Pipeline {
                stages,
                blocks,
                bytes,
                compute_ns,
            } => {
                fields.push(("stages", Json::num(*stages as f64)));
                fields.push(("blocks", Json::num(f64::from(*blocks))));
                fields.push(("bytes", Json::num(*bytes as f64)));
                fields.push(("compute_ns", Json::u64_str(*compute_ns)));
            }
            Motif::Stream { sizes } => {
                fields.push((
                    "sizes",
                    Json::Arr(sizes.iter().map(|s| Json::num(*s as f64)).collect()),
                ));
            }
            Motif::Rpc {
                requests,
                bytes,
                compute_ns,
            } => {
                fields.push(("requests", Json::num(f64::from(*requests))));
                fields.push(("bytes", Json::num(*bytes as f64)));
                fields.push(("compute_ns", Json::u64_str(*compute_ns)));
            }
            Motif::FanOut {
                sinks,
                blocks,
                bytes,
            } => {
                fields.push(("sinks", Json::num(*sinks as f64)));
                fields.push(("blocks", Json::num(f64::from(*blocks))));
                fields.push(("bytes", Json::num(*bytes as f64)));
            }
            Motif::FanIn {
                sources,
                blocks,
                bytes,
            } => {
                fields.push(("sources", Json::num(*sources as f64)));
                fields.push(("blocks", Json::num(f64::from(*blocks))));
                fields.push(("bytes", Json::num(*bytes as f64)));
            }
        }
        Json::obj(fields)
    }

    fn from_json(v: &Json) -> Result<Motif, String> {
        let kind = v
            .get("kind")
            .and_then(Json::as_str)
            .ok_or("motif missing 'kind'")?;
        let usize_field = |k: &str| -> Result<usize, String> {
            v.get(k)
                .and_then(Json::as_num)
                .map(|n| n as usize)
                .ok_or_else(|| format!("motif missing '{k}'"))
        };
        let u32_field = |k: &str| -> Result<u32, String> {
            v.get(k)
                .and_then(Json::as_num)
                .map(|n| n as u32)
                .ok_or_else(|| format!("motif missing '{k}'"))
        };
        let ns_field = |k: &str| -> Result<u64, String> {
            v.get(k)
                .and_then(Json::as_u64_str)
                .ok_or_else(|| format!("motif missing '{k}'"))
        };
        match kind {
            "pipeline" => Ok(Motif::Pipeline {
                stages: usize_field("stages")?,
                blocks: u32_field("blocks")?,
                bytes: usize_field("bytes")?,
                compute_ns: ns_field("compute_ns")?,
            }),
            "stream" => {
                let sizes = v
                    .get("sizes")
                    .and_then(Json::as_arr)
                    .ok_or("stream motif missing 'sizes'")?
                    .iter()
                    .map(|s| s.as_num().map(|n| n as usize).ok_or("bad size entry"))
                    .collect::<Result<Vec<_>, _>>()?;
                Ok(Motif::Stream { sizes })
            }
            "rpc" => Ok(Motif::Rpc {
                requests: u32_field("requests")?,
                bytes: usize_field("bytes")?,
                compute_ns: ns_field("compute_ns")?,
            }),
            "fan_out" => Ok(Motif::FanOut {
                sinks: usize_field("sinks")?,
                blocks: u32_field("blocks")?,
                bytes: usize_field("bytes")?,
            }),
            "fan_in" => Ok(Motif::FanIn {
                sources: usize_field("sources")?,
                blocks: u32_field("blocks")?,
                bytes: usize_field("bytes")?,
            }),
            other => Err(format!("unknown motif kind '{other}'")),
        }
    }
}

/// A complete generated system model, replayable from its JSON form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModelSpec {
    /// Model name (used for the app name and repro file names).
    pub name: String,
    /// Seed every payload is derived from.
    pub seed: u64,
    /// The motifs; each elaborates to a disjoint PE/channel group.
    pub motifs: Vec<Motif>,
    /// When `true` (the default), consumer PEs assert payload contents
    /// in-app. The harness disables this to prove that *silent* corruption
    /// — corruption no application check would notice — is still caught by
    /// the cross-level equivalence check.
    pub app_checks: bool,
}

/// Knobs bounding random generation; defaults keep models small enough for
/// fast debug-mode simulation across all abstraction levels.
#[derive(Debug, Clone)]
pub struct GenConfig {
    /// Motifs per model, inclusive range.
    pub motifs: (usize, usize),
    /// Blocks / requests / messages per motif, inclusive range.
    pub blocks: (u32, u32),
    /// Payload bytes, inclusive range (zero-length payloads are always
    /// sprinkled in by the stream motif).
    pub bytes: (usize, usize),
    /// Maximum per-stage compute delay in nanoseconds.
    pub max_compute_ns: u64,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig {
            motifs: (1, 3),
            blocks: (1, 6),
            bytes: (1, 256),
            max_compute_ns: 2_000,
        }
    }
}

/// Deterministic payload for block `block` of channel `chan` in motif
/// `motif` of a model seeded with `seed`. Stream-independent mixing keeps
/// payloads distinct across channels and blocks.
pub fn payload(seed: u64, motif: usize, chan: usize, block: u32, len: usize) -> Vec<u8> {
    let s = seed
        ^ (motif as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ (chan as u64).wrapping_mul(0xC2B2_AE3D_27D4_EB4F)
        ^ u64::from(block).wrapping_mul(0x1656_67B1_9E37_79F9)
        ^ 0x5851_F42D_4C95_7F2D;
    Rng::seed_from_u64(s).bytes(len)
}

impl ModelSpec {
    /// Generates a random model from `seed` within the bounds of `cfg`.
    pub fn random(seed: u64, cfg: &GenConfig) -> ModelSpec {
        let mut rng = Rng::seed_from_u64(seed);
        let n_motifs = rng.gen_range_usize(cfg.motifs.0, cfg.motifs.1 + 1);
        let mut motifs = Vec::with_capacity(n_motifs);
        for _ in 0..n_motifs {
            let blocks =
                rng.gen_range_u64(u64::from(cfg.blocks.0), u64::from(cfg.blocks.1) + 1) as u32;
            let bytes = rng.gen_range_usize(cfg.bytes.0, cfg.bytes.1 + 1);
            let compute_ns = if cfg.max_compute_ns == 0 {
                0
            } else {
                rng.gen_range_u64(0, cfg.max_compute_ns + 1)
            };
            motifs.push(match rng.gen_range_usize(0, 5) {
                0 => Motif::Pipeline {
                    stages: rng.gen_range_usize(2, 5),
                    blocks,
                    bytes,
                    compute_ns,
                },
                1 => {
                    let n = rng.gen_range_usize(1, blocks as usize + 1);
                    let sizes = (0..n)
                        .map(|_| {
                            // One in four messages is empty: zero-length
                            // payloads must survive every level.
                            if rng.gen_range_usize(0, 4) == 0 {
                                0
                            } else {
                                rng.gen_range_usize(cfg.bytes.0, cfg.bytes.1 + 1)
                            }
                        })
                        .collect();
                    Motif::Stream { sizes }
                }
                2 => Motif::Rpc {
                    requests: blocks,
                    bytes,
                    compute_ns,
                },
                3 => Motif::FanOut {
                    sinks: rng.gen_range_usize(1, 4),
                    blocks,
                    bytes,
                },
                _ => Motif::FanIn {
                    sources: rng.gen_range_usize(1, 4),
                    blocks,
                    bytes,
                },
            });
        }
        ModelSpec {
            name: format!("gen-{seed}"),
            seed,
            motifs,
            app_checks: true,
        }
    }

    /// Draws a random candidate architecture for this model (separate
    /// stream from the model itself so shrinking a model never changes its
    /// architecture).
    pub fn random_arch(seed: u64) -> ArchSpec {
        let mut rng = Rng::seed_from_u64(seed ^ 0xA5A5_5A5A_DEAD_BEEF);
        let mut arch = match rng.gen_range_usize(0, 5) {
            0 => ArchSpec::plb(),
            1 => ArchSpec::opb(),
            2 => ArchSpec::crossbar(),
            // SPLIT on half the AHB draws, so both the parked-master path
            // and the plain pipelined path see random models.
            3 => ArchSpec::ahb().with_split(rng.gen_range_usize(0, 2) == 1),
            // Meshes stay small (2..=4 per side) to keep the 50-case
            // harness interactive; the dedicated stress suite covers 16×16.
            _ => ArchSpec::noc(
                rng.gen_range_usize(2, 5) as u8,
                rng.gen_range_usize(2, 5) as u8,
            ),
        };
        arch.arb = match rng.gen_range_usize(0, 3) {
            0 => ArbPolicy::FixedPriority,
            1 => ArbPolicy::RoundRobin,
            _ => ArbPolicy::Tdma {
                slot: SimDur::ns(rng.gen_range_u64(50, 400)),
                slots: rng.gen_range_usize(2, 5),
            },
        };
        arch.burst_bytes = [16, 32, 64, 128][rng.gen_range_usize(0, 4)];
        arch.rx_capacity = [1, 2, 4, 8][rng.gen_range_usize(0, 4)];
        arch
    }

    /// The same model with every compute delay stripped. Compute delays
    /// are timing-only — per-(channel, port) content streams at the
    /// untimed level do not depend on them — so the stripped model is the
    /// natural input for the direct-execution differential target, which
    /// rejects timed waits.
    pub fn untimed(&self) -> ModelSpec {
        let mut spec = self.clone();
        for motif in &mut spec.motifs {
            match motif {
                Motif::Pipeline { compute_ns, .. } | Motif::Rpc { compute_ns, .. } => {
                    *compute_ns = 0;
                }
                Motif::Stream { .. } | Motif::FanOut { .. } | Motif::FanIn { .. } => {}
            }
        }
        spec
    }

    /// Total PE count of the elaborated model.
    pub fn pe_count(&self) -> usize {
        self.motifs.iter().map(Motif::pe_count).sum()
    }

    /// Total channel count of the elaborated model.
    pub fn channel_count(&self) -> usize {
        self.motifs.iter().map(Motif::channel_count).sum()
    }

    /// Total application-level message count of the elaborated model.
    pub fn message_count(&self) -> u64 {
        self.motifs.iter().map(Motif::message_count).sum()
    }

    /// All channel names of the elaborated model, in declaration order.
    pub fn channel_names(&self) -> Vec<String> {
        let mut names = Vec::new();
        for (i, m) in self.motifs.iter().enumerate() {
            for j in 0..m.channel_count() {
                names.push(format!("m{i}.ch{j}"));
            }
        }
        names
    }

    /// All PE names of the elaborated model.
    pub fn pe_names(&self) -> Vec<String> {
        let mut names = Vec::new();
        for (i, m) in self.motifs.iter().enumerate() {
            match m {
                Motif::Pipeline { stages, .. } => {
                    for s in 0..*stages {
                        names.push(format!("m{i}.p{s}"));
                    }
                }
                Motif::Stream { .. } => {
                    names.push(format!("m{i}.prod"));
                    names.push(format!("m{i}.cons"));
                }
                Motif::Rpc { .. } => {
                    names.push(format!("m{i}.client"));
                    names.push(format!("m{i}.server"));
                }
                Motif::FanOut { sinks, .. } => {
                    names.push(format!("m{i}.src"));
                    for s in 0..*sinks {
                        names.push(format!("m{i}.sink{s}"));
                    }
                }
                Motif::FanIn { sources, .. } => {
                    for s in 0..*sources {
                        names.push(format!("m{i}.src{s}"));
                    }
                    names.push(format!("m{i}.cons"));
                }
            }
        }
        names
    }

    /// The SW-partition candidates for HW/SW conformance runs: one
    /// master-side PE per motif (masters map onto the CPU's polling driver).
    pub fn sw_candidates(&self) -> Vec<String> {
        self.motifs
            .iter()
            .enumerate()
            .map(|(i, m)| match m {
                Motif::Pipeline { .. } => format!("m{i}.p0"),
                Motif::Stream { .. } => format!("m{i}.prod"),
                Motif::Rpc { .. } => format!("m{i}.client"),
                Motif::FanOut { .. } => format!("m{i}.src"),
                Motif::FanIn { .. } => format!("m{i}.src0"),
            })
            .collect()
    }

    /// Elaborates the spec into a runnable [`AppSpec`]. Every payload is a
    /// pure function of `(seed, motif, channel, block)`, and consumer-side
    /// content assertions are included when [`app_checks`](Self::app_checks)
    /// is set.
    pub fn to_app(&self) -> AppSpec {
        let mut app = AppSpec::new(&self.name);
        let seed = self.seed;
        let checks = self.app_checks;
        for (i, m) in self.motifs.iter().enumerate() {
            match *m {
                Motif::Pipeline {
                    stages,
                    blocks,
                    bytes,
                    compute_ns,
                } => {
                    let src = format!("m{i}.p0");
                    app.add_pe(&src, move || {
                        Box::new(move |ctx, ports: Vec<ShipPort>| {
                            for b in 0..blocks {
                                let data = payload(seed, i, 0, b, bytes);
                                ports[0].send(ctx, &data).unwrap();
                            }
                        })
                    });
                    for s in 1..stages - 1 {
                        let name = format!("m{i}.p{s}");
                        app.add_pe(&name, move || {
                            Box::new(move |ctx, ports: Vec<ShipPort>| {
                                for _ in 0..blocks {
                                    let data: Vec<u8> = ports[0].recv(ctx).unwrap();
                                    if compute_ns > 0 {
                                        ctx.wait_for(SimDur::ns(compute_ns));
                                    }
                                    let out: Vec<u8> =
                                        data.iter().map(|b| b.wrapping_add(1)).collect();
                                    ports[1].send(ctx, &out).unwrap();
                                }
                            })
                        });
                    }
                    let sink = format!("m{i}.p{}", stages - 1);
                    let hops = (stages - 2) as u8;
                    app.add_pe(&sink, move || {
                        Box::new(move |ctx, ports: Vec<ShipPort>| {
                            for b in 0..blocks {
                                let data: Vec<u8> = ports[0].recv(ctx).unwrap();
                                if checks {
                                    let expected: Vec<u8> = payload(seed, i, 0, b, bytes)
                                        .iter()
                                        .map(|x| x.wrapping_add(hops))
                                        .collect();
                                    assert_eq!(data, expected, "pipeline m{i} corrupted block {b}");
                                }
                            }
                        })
                    });
                    for w in 0..stages - 1 {
                        app.connect(
                            &format!("m{i}.ch{w}"),
                            &format!("m{i}.p{w}"),
                            &format!("m{i}.p{}", w + 1),
                        );
                    }
                }
                Motif::Stream { ref sizes } => {
                    let sizes_tx = sizes.clone();
                    app.add_pe(&format!("m{i}.prod"), move || {
                        let sizes = sizes_tx.clone();
                        Box::new(move |ctx, ports: Vec<ShipPort>| {
                            for (b, len) in sizes.iter().enumerate() {
                                let data = payload(seed, i, 0, b as u32, *len);
                                ports[0].send(ctx, &data).unwrap();
                            }
                        })
                    });
                    let sizes_rx = sizes.clone();
                    app.add_pe(&format!("m{i}.cons"), move || {
                        let sizes = sizes_rx.clone();
                        Box::new(move |ctx, ports: Vec<ShipPort>| {
                            for (b, len) in sizes.iter().enumerate() {
                                let data: Vec<u8> = ports[0].recv(ctx).unwrap();
                                if checks {
                                    let expected = payload(seed, i, 0, b as u32, *len);
                                    assert_eq!(data, expected, "stream m{i} corrupted msg {b}");
                                }
                            }
                        })
                    });
                    app.connect(
                        &format!("m{i}.ch0"),
                        &format!("m{i}.prod"),
                        &format!("m{i}.cons"),
                    );
                }
                Motif::Rpc {
                    requests,
                    bytes,
                    compute_ns,
                } => {
                    app.add_pe(&format!("m{i}.client"), move || {
                        Box::new(move |ctx, ports: Vec<ShipPort>| {
                            for b in 0..requests {
                                let data = payload(seed, i, 0, b, bytes);
                                let reply: Vec<u8> = ports[0].request(ctx, &data).unwrap();
                                if checks {
                                    let expected: Vec<u8> = data.iter().map(|x| x ^ 0x5A).collect();
                                    assert_eq!(reply, expected, "rpc m{i} bad reply {b}");
                                }
                            }
                        })
                    });
                    app.add_pe(&format!("m{i}.server"), move || {
                        Box::new(move |ctx, ports: Vec<ShipPort>| {
                            for _ in 0..requests {
                                let data: Vec<u8> = ports[0].recv(ctx).unwrap();
                                if compute_ns > 0 {
                                    ctx.wait_for(SimDur::ns(compute_ns));
                                }
                                let out: Vec<u8> = data.iter().map(|x| x ^ 0x5A).collect();
                                ports[0].reply(ctx, &out).unwrap();
                            }
                        })
                    });
                    app.connect(
                        &format!("m{i}.ch0"),
                        &format!("m{i}.client"),
                        &format!("m{i}.server"),
                    );
                }
                Motif::FanOut {
                    sinks,
                    blocks,
                    bytes,
                } => {
                    app.add_pe(&format!("m{i}.src"), move || {
                        Box::new(move |ctx, ports: Vec<ShipPort>| {
                            for b in 0..blocks {
                                for (c, port) in ports.iter().enumerate() {
                                    let data = payload(seed, i, c, b, bytes);
                                    port.send(ctx, &data).unwrap();
                                }
                            }
                        })
                    });
                    for s in 0..sinks {
                        app.add_pe(&format!("m{i}.sink{s}"), move || {
                            Box::new(move |ctx, ports: Vec<ShipPort>| {
                                for b in 0..blocks {
                                    let data: Vec<u8> = ports[0].recv(ctx).unwrap();
                                    if checks {
                                        let expected = payload(seed, i, s, b, bytes);
                                        assert_eq!(
                                            data, expected,
                                            "fan-out m{i} sink {s} corrupted block {b}"
                                        );
                                    }
                                }
                            })
                        });
                    }
                    for s in 0..sinks {
                        app.connect(
                            &format!("m{i}.ch{s}"),
                            &format!("m{i}.src"),
                            &format!("m{i}.sink{s}"),
                        );
                    }
                }
                Motif::FanIn {
                    sources,
                    blocks,
                    bytes,
                } => {
                    for s in 0..sources {
                        app.add_pe(&format!("m{i}.src{s}"), move || {
                            Box::new(move |ctx, ports: Vec<ShipPort>| {
                                for b in 0..blocks {
                                    let data = payload(seed, i, s, b, bytes);
                                    ports[0].send(ctx, &data).unwrap();
                                }
                            })
                        });
                    }
                    // Drained port by port: each source blocks at most on
                    // channel capacity while earlier ports drain, so the
                    // motif cannot deadlock.
                    app.add_pe(&format!("m{i}.cons"), move || {
                        Box::new(move |ctx, ports: Vec<ShipPort>| {
                            for (c, port) in ports.iter().enumerate() {
                                for b in 0..blocks {
                                    let data: Vec<u8> = port.recv(ctx).unwrap();
                                    if checks {
                                        let expected = payload(seed, i, c, b, bytes);
                                        assert_eq!(
                                            data, expected,
                                            "fan-in m{i} port {c} corrupted block {b}"
                                        );
                                    }
                                }
                            }
                        })
                    });
                    for s in 0..sources {
                        app.connect(
                            &format!("m{i}.ch{s}"),
                            &format!("m{i}.src{s}"),
                            &format!("m{i}.cons"),
                        );
                    }
                }
            }
        }
        app
    }

    /// Serializes the spec to compact JSON (the corpus format). Seeds and
    /// nanosecond values are stored as decimal strings so they survive the
    /// `f64` number representation losslessly.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("name", Json::str(self.name.clone())),
            ("seed", Json::u64_str(self.seed)),
            (
                "motifs",
                Json::Arr(self.motifs.iter().map(Motif::to_json).collect()),
            ),
            ("app_checks", Json::Bool(self.app_checks)),
        ])
    }

    /// Rebuilds a spec from its [`to_json`](Self::to_json) form.
    ///
    /// # Errors
    ///
    /// Returns a description of the first missing or malformed field.
    pub fn from_json(v: &Json) -> Result<ModelSpec, String> {
        Ok(ModelSpec {
            name: v
                .get("name")
                .and_then(Json::as_str)
                .ok_or("model missing 'name'")?
                .to_string(),
            seed: v
                .get("seed")
                .and_then(Json::as_u64_str)
                .ok_or("model missing 'seed'")?,
            motifs: v
                .get("motifs")
                .and_then(Json::as_arr)
                .ok_or("model missing 'motifs'")?
                .iter()
                .map(Motif::from_json)
                .collect::<Result<Vec<_>, _>>()?,
            app_checks: v.get("app_checks").and_then(Json::as_bool).unwrap_or(true),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let cfg = GenConfig::default();
        let a = ModelSpec::random(42, &cfg);
        let b = ModelSpec::random(42, &cfg);
        assert_eq!(a, b);
        assert_ne!(a, ModelSpec::random(43, &cfg));
        assert!(!a.motifs.is_empty());
        assert!(a.pe_count() >= 2);
    }

    #[test]
    fn json_roundtrip_preserves_spec() {
        let cfg = GenConfig::default();
        for seed in 0..32 {
            let spec = ModelSpec::random(seed, &cfg);
            let text = spec.to_json().to_string();
            let back = ModelSpec::from_json(&Json::parse(&text).unwrap()).unwrap();
            assert_eq!(back, spec, "roundtrip changed spec for seed {seed}");
        }
    }

    #[test]
    fn payloads_are_stream_independent() {
        assert_ne!(payload(1, 0, 0, 0, 16), payload(1, 0, 0, 1, 16));
        assert_ne!(payload(1, 0, 0, 0, 16), payload(1, 0, 1, 0, 16));
        assert_ne!(payload(1, 0, 0, 0, 16), payload(1, 1, 0, 0, 16));
        assert_ne!(payload(1, 0, 0, 0, 16), payload(2, 0, 0, 0, 16));
        assert_eq!(payload(7, 2, 1, 3, 33), payload(7, 2, 1, 3, 33));
    }

    #[test]
    fn elaborated_app_matches_counts() {
        let spec = ModelSpec::random(9, &GenConfig::default());
        let app = spec.to_app();
        assert_eq!(app.pes().len(), spec.pe_count());
        assert_eq!(app.channels().len(), spec.channel_count());
        let names = spec.pe_names();
        assert_eq!(names.len(), spec.pe_count());
        for n in &names {
            assert!(app.pe(n).is_some(), "spec names unknown PE {n}");
        }
    }
}
