//! Shared assertion helpers for transaction traces and their exports.
//!
//! Integration suites across the workspace validate the same properties of
//! a [`TxnTrace`]: spans must be well-formed, per-process completion times
//! must be monotone, and the Chrome / JSONL exports must be valid JSON of
//! the documented shape. These helpers centralize that logic on top of the
//! testkit's dependency-free [`Json`] parser.

use std::collections::BTreeMap;

use shiptlm_kernel::txn::TxnTrace;

use crate::json::Json;

/// Asserts that every span in `trace` starts no later than it ends and
/// that completion times are non-decreasing per process (events are
/// recorded at completion).
///
/// # Panics
///
/// Panics with a description of the first offending event.
pub fn assert_spans_consistent(trace: &TxnTrace) {
    let mut last_end: BTreeMap<&str, _> = BTreeMap::new();
    for ev in trace.events() {
        assert!(ev.start <= ev.end, "span begins after it ends: {ev:?}");
        if let Some(prev) = last_end.insert(&*ev.process, ev.end) {
            assert!(
                prev <= ev.end,
                "process {} completion time went backwards ({prev} -> {})",
                ev.process,
                ev.end
            );
        }
    }
}

/// Shape summary of a parsed Chrome `trace_event` export.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ChromeShape {
    /// `"M"` thread-name metadata records.
    pub metadata: usize,
    /// `"X"` complete events.
    pub complete: usize,
    /// Distinct `cat` values seen on complete events.
    pub categories: Vec<String>,
}

/// Parses `text` as Chrome `trace_event` JSON and validates the shape the
/// recorder documents: `displayTimeUnit` is `"ns"`, every event is either a
/// `thread_name` metadata record or a complete event with non-negative
/// `ts`/`dur`, a known category and `resource`/`bytes` args.
///
/// # Errors
///
/// Returns a description of the first malformed construct.
pub fn check_chrome_trace(text: &str) -> Result<ChromeShape, String> {
    let doc = Json::parse(text)?;
    if doc.get("displayTimeUnit").and_then(Json::as_str) != Some("ns") {
        return Err("displayTimeUnit is not \"ns\"".into());
    }
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_arr)
        .ok_or("missing traceEvents array")?;
    let mut shape = ChromeShape::default();
    for (i, ev) in events.iter().enumerate() {
        match ev.get("ph").and_then(Json::as_str) {
            Some("M") => {
                shape.metadata += 1;
                if ev.get("name").and_then(Json::as_str) != Some("thread_name") {
                    return Err(format!("metadata event {i} is not a thread_name record"));
                }
            }
            Some("X") => {
                shape.complete += 1;
                let ts = ev
                    .get("ts")
                    .and_then(Json::as_num)
                    .ok_or_else(|| format!("event {i} missing numeric ts"))?;
                let dur = ev
                    .get("dur")
                    .and_then(Json::as_num)
                    .ok_or_else(|| format!("event {i} missing numeric dur"))?;
                if ts < 0.0 || dur < 0.0 {
                    return Err(format!("event {i} has negative ts/dur"));
                }
                let cat = ev
                    .get("cat")
                    .and_then(Json::as_str)
                    .ok_or_else(|| format!("event {i} missing cat"))?;
                if !["ship", "bus", "ocp", "driver"].contains(&cat) {
                    return Err(format!("event {i} has unknown category '{cat}'"));
                }
                if !shape.categories.iter().any(|c| c == cat) {
                    shape.categories.push(cat.to_string());
                }
                let args = ev
                    .get("args")
                    .ok_or_else(|| format!("event {i} missing args"))?;
                if args.get("resource").and_then(Json::as_str).is_none() {
                    return Err(format!("event {i} missing args.resource"));
                }
                if args.get("bytes").and_then(Json::as_num).is_none() {
                    return Err(format!("event {i} missing args.bytes"));
                }
            }
            other => return Err(format!("event {i} has unexpected phase {other:?}")),
        }
    }
    Ok(shape)
}

/// Asserts that `trace`'s Chrome export is well-formed and covers exactly
/// the retained events; returns the shape for further inspection.
pub fn assert_chrome_export(trace: &TxnTrace) -> ChromeShape {
    let shape = check_chrome_trace(&trace.to_chrome_json()).expect("chrome trace must be valid");
    assert_eq!(
        shape.complete,
        trace.events().len(),
        "chrome export must carry one complete event per retained span"
    );
    shape
}

/// Asserts that `trace`'s JSONL export has one valid JSON object per
/// retained event, each carrying the documented fields.
pub fn assert_jsonl_export(trace: &TxnTrace) {
    let jsonl = trace.to_jsonl();
    let lines: Vec<&str> = jsonl.lines().collect();
    assert_eq!(lines.len(), trace.events().len());
    for (i, line) in lines.iter().enumerate() {
        let obj =
            Json::parse(line).unwrap_or_else(|e| panic!("JSONL line {i} must parse: {e}\n{line}"));
        for key in ["level", "op", "resource", "process", "outcome"] {
            assert!(
                obj.get(key).and_then(Json::as_str).is_some(),
                "JSONL line {i} missing string field '{key}'"
            );
        }
        for key in ["start_ps", "end_ps", "bytes"] {
            assert!(
                obj.get(key).and_then(Json::as_num).is_some(),
                "JSONL line {i} missing numeric field '{key}'"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chrome_checker_accepts_documented_shape() {
        let text = concat!(
            "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[",
            "{\"ph\":\"M\",\"pid\":0,\"tid\":0,\"name\":\"thread_name\",\"args\":{\"name\":\"p\"}},",
            "{\"ph\":\"X\",\"pid\":0,\"tid\":0,\"cat\":\"ship\",\"name\":\"send\",\"ts\":1,\"dur\":2,",
            "\"args\":{\"resource\":\"ch0\",\"bytes\":64,\"outcome\":\"ok\"}}",
            "]}"
        );
        let shape = check_chrome_trace(text).unwrap();
        assert_eq!(shape.metadata, 1);
        assert_eq!(shape.complete, 1);
        assert_eq!(shape.categories, vec!["ship".to_string()]);
    }

    #[test]
    fn chrome_checker_rejects_bad_shapes() {
        assert!(check_chrome_trace("{\"traceEvents\":[]}").is_err());
        assert!(check_chrome_trace(
            "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[{\"ph\":\"Q\"}]}"
        )
        .is_err());
        assert!(check_chrome_trace(
            "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[{\"ph\":\"X\",\"cat\":\"nope\",\"ts\":0,\"dur\":0,\"args\":{}}]}"
        )
        .is_err());
    }

    #[test]
    fn empty_trace_passes_every_assert() {
        let trace = TxnTrace::default();
        assert_spans_consistent(&trace);
        let shape = assert_chrome_export(&trace);
        assert_eq!(shape.complete, 0);
        assert_jsonl_export(&trace);
    }
}
