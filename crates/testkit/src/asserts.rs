//! Shared assertion helpers for transaction traces and their exports.
//!
//! Integration suites across the workspace validate the same properties of
//! a [`TxnTrace`]: spans must be well-formed, per-process completion times
//! must be monotone, and the Chrome / JSONL exports must be valid JSON of
//! the documented shape. These helpers centralize that logic on top of the
//! testkit's dependency-free [`Json`] parser.

use std::collections::BTreeMap;

use shiptlm_kernel::txn::TxnTrace;

use crate::json::Json;

/// Asserts that every span in `trace` starts no later than it ends and
/// that completion times are non-decreasing per process (events are
/// recorded at completion).
///
/// # Panics
///
/// Panics with a description of the first offending event.
pub fn assert_spans_consistent(trace: &TxnTrace) {
    let mut last_end: BTreeMap<&str, _> = BTreeMap::new();
    for ev in trace.events() {
        assert!(ev.start <= ev.end, "span begins after it ends: {ev:?}");
        if let Some(prev) = last_end.insert(&*ev.process, ev.end) {
            assert!(
                prev <= ev.end,
                "process {} completion time went backwards ({prev} -> {})",
                ev.process,
                ev.end
            );
        }
    }
}

/// Shape summary of a parsed Chrome `trace_event` export.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ChromeShape {
    /// `"M"` thread-name metadata records.
    pub metadata: usize,
    /// `"X"` complete events.
    pub complete: usize,
    /// Distinct `cat` values seen on complete events.
    pub categories: Vec<String>,
}

/// Parses `text` as Chrome `trace_event` JSON and validates the shape the
/// recorder documents: `displayTimeUnit` is `"ns"`, every event is either a
/// `thread_name` metadata record or a complete event with non-negative
/// `ts`/`dur`, a known category and `resource`/`bytes` args.
///
/// # Errors
///
/// Returns a description of the first malformed construct.
pub fn check_chrome_trace(text: &str) -> Result<ChromeShape, String> {
    let doc = Json::parse(text)?;
    if doc.get("displayTimeUnit").and_then(Json::as_str) != Some("ns") {
        return Err("displayTimeUnit is not \"ns\"".into());
    }
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_arr)
        .ok_or("missing traceEvents array")?;
    let mut shape = ChromeShape::default();
    for (i, ev) in events.iter().enumerate() {
        match ev.get("ph").and_then(Json::as_str) {
            Some("M") => {
                shape.metadata += 1;
                if ev.get("name").and_then(Json::as_str) != Some("thread_name") {
                    return Err(format!("metadata event {i} is not a thread_name record"));
                }
            }
            Some("X") => {
                shape.complete += 1;
                let ts = ev
                    .get("ts")
                    .and_then(Json::as_num)
                    .ok_or_else(|| format!("event {i} missing numeric ts"))?;
                let dur = ev
                    .get("dur")
                    .and_then(Json::as_num)
                    .ok_or_else(|| format!("event {i} missing numeric dur"))?;
                if ts < 0.0 || dur < 0.0 {
                    return Err(format!("event {i} has negative ts/dur"));
                }
                let cat = ev
                    .get("cat")
                    .and_then(Json::as_str)
                    .ok_or_else(|| format!("event {i} missing cat"))?;
                if !["ship", "bus", "ocp", "driver"].contains(&cat) {
                    return Err(format!("event {i} has unknown category '{cat}'"));
                }
                if !shape.categories.iter().any(|c| c == cat) {
                    shape.categories.push(cat.to_string());
                }
                let args = ev
                    .get("args")
                    .ok_or_else(|| format!("event {i} missing args"))?;
                if args.get("resource").and_then(Json::as_str).is_none() {
                    return Err(format!("event {i} missing args.resource"));
                }
                if args.get("bytes").and_then(Json::as_num).is_none() {
                    return Err(format!("event {i} missing args.bytes"));
                }
            }
            other => return Err(format!("event {i} has unexpected phase {other:?}")),
        }
    }
    Ok(shape)
}

/// One parsed span from a causal Chrome export, reconstructed from the
/// `args` ids the exporter embeds (Chrome itself nests only by time).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CausalSpanInfo {
    /// Stage label (the event's `cat`): `job`, `gateway`, `admission`,
    /// `queue-wait`, `cache`, `exec`, `role-detect`, `chunk`, `candidate`,
    /// or `txn`.
    pub stage: String,
    /// Human-readable span name.
    pub name: String,
    /// Unique span id.
    pub span_id: u64,
    /// Parent span id (0 = trace root).
    pub parent_id: u64,
    /// Track / Chrome `pid` (0 = host wall clock, `i + 1` = candidate
    /// `i`'s simulated timeline).
    pub track: u64,
}

/// Structure of a validated causal Chrome export.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CausalShape {
    /// The single trace id shared by every span (16 hex digits).
    pub trace_id: String,
    /// Every complete event, in file order.
    pub spans: Vec<CausalSpanInfo>,
}

impl CausalShape {
    /// Spans whose stage equals `stage`, in file order.
    pub fn stage(&self, stage: &str) -> Vec<&CausalSpanInfo> {
        self.spans.iter().filter(|s| s.stage == stage).collect()
    }

    /// The stage of `span`'s parent, or `None` for a trace root.
    pub fn parent_stage(&self, span: &CausalSpanInfo) -> Option<&str> {
        self.spans
            .iter()
            .find(|s| s.span_id == span.parent_id)
            .map(|s| s.stage.as_str())
    }

    /// Asserts every span of `child_stage` is parented under a span of
    /// `parent_stage`.
    ///
    /// # Panics
    ///
    /// Panics naming the first offending span.
    pub fn assert_nested(&self, child_stage: &str, parent_stage: &str) {
        let children = self.stage(child_stage);
        assert!(
            !children.is_empty(),
            "no '{child_stage}' spans to check nesting for"
        );
        for child in children {
            let parent = self.parent_stage(child);
            assert_eq!(
                parent,
                Some(parent_stage),
                "'{child_stage}' span '{}' must be parented under '{parent_stage}', found {parent:?}",
                child.name
            );
        }
    }
}

/// Parses `text` as a *causal* Chrome `trace_event` export (the
/// [`CausalTrace`] flavor: span/parent/trace ids in `args`) and validates
/// end-to-end causality: exactly one trace id across all complete events,
/// unique span ids, every non-zero parent resolving to a span in the same
/// file, at least one root, and no parent cycles.
///
/// # Errors
///
/// Returns a description of the first violated property.
///
/// [`CausalTrace`]: shiptlm_kernel::causal::CausalTrace
pub fn check_causal_trace(text: &str) -> Result<CausalShape, String> {
    let doc = Json::parse(text)?;
    if doc.get("displayTimeUnit").and_then(Json::as_str) != Some("ns") {
        return Err("displayTimeUnit is not \"ns\"".into());
    }
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_arr)
        .ok_or("missing traceEvents array")?;
    let mut trace_id: Option<String> = None;
    let mut spans = Vec::new();
    for (i, ev) in events.iter().enumerate() {
        match ev.get("ph").and_then(Json::as_str) {
            Some("M") => continue,
            Some("X") => {
                let args = ev
                    .get("args")
                    .ok_or_else(|| format!("event {i} missing args"))?;
                let tid = args
                    .get("trace_id")
                    .and_then(Json::as_str)
                    .ok_or_else(|| format!("event {i} missing args.trace_id"))?;
                match &trace_id {
                    None => trace_id = Some(tid.to_string()),
                    Some(seen) if seen != tid => {
                        return Err(format!(
                            "event {i} carries trace id {tid} but the trace started with {seen}"
                        ))
                    }
                    Some(_) => {}
                }
                let num = |key: &str| {
                    args.get(key)
                        .and_then(Json::as_num)
                        .filter(|v| *v >= 0.0)
                        .map(|v| v as u64)
                        .ok_or_else(|| format!("event {i} missing numeric args.{key}"))
                };
                spans.push(CausalSpanInfo {
                    stage: ev
                        .get("cat")
                        .and_then(Json::as_str)
                        .ok_or_else(|| format!("event {i} missing cat"))?
                        .to_string(),
                    name: ev
                        .get("name")
                        .and_then(Json::as_str)
                        .ok_or_else(|| format!("event {i} missing name"))?
                        .to_string(),
                    span_id: num("span_id")?,
                    parent_id: num("parent_id")?,
                    track: ev
                        .get("pid")
                        .and_then(Json::as_num)
                        .map(|v| v as u64)
                        .ok_or_else(|| format!("event {i} missing pid"))?,
                });
            }
            other => return Err(format!("event {i} has unexpected phase {other:?}")),
        }
    }
    let trace_id = trace_id.ok_or("trace holds no complete events")?;

    let mut ids = std::collections::BTreeMap::new();
    for s in &spans {
        if s.span_id == 0 {
            return Err(format!("span '{}' has id 0 (reserved for roots)", s.name));
        }
        if ids.insert(s.span_id, s.parent_id).is_some() {
            return Err(format!("duplicate span id {}", s.span_id));
        }
    }
    let mut roots = 0usize;
    for s in &spans {
        if s.parent_id == 0 {
            roots += 1;
            continue;
        }
        if !ids.contains_key(&s.parent_id) {
            return Err(format!(
                "span '{}' (id {}) parents under {} which is not in the trace",
                s.name, s.span_id, s.parent_id
            ));
        }
        // Walk to a root; a walk longer than the span count is a cycle.
        let mut cursor = s.parent_id;
        let mut steps = 0usize;
        while cursor != 0 {
            cursor = *ids.get(&cursor).ok_or_else(|| {
                format!("span chain from {} escapes the trace at {cursor}", s.span_id)
            })?;
            steps += 1;
            if steps > spans.len() {
                return Err(format!("parent cycle reachable from span {}", s.span_id));
            }
        }
    }
    if roots == 0 {
        return Err("trace has no root span (every parent_id is non-zero)".into());
    }
    Ok(CausalShape { trace_id, spans })
}

/// Asserts that `trace`'s Chrome export is well-formed and covers exactly
/// the retained events; returns the shape for further inspection.
pub fn assert_chrome_export(trace: &TxnTrace) -> ChromeShape {
    let shape = check_chrome_trace(&trace.to_chrome_json()).expect("chrome trace must be valid");
    assert_eq!(
        shape.complete,
        trace.events().len(),
        "chrome export must carry one complete event per retained span"
    );
    shape
}

/// Asserts that `trace`'s JSONL export has one valid JSON object per
/// retained event, each carrying the documented fields.
pub fn assert_jsonl_export(trace: &TxnTrace) {
    let jsonl = trace.to_jsonl();
    let lines: Vec<&str> = jsonl.lines().collect();
    assert_eq!(lines.len(), trace.events().len());
    for (i, line) in lines.iter().enumerate() {
        let obj =
            Json::parse(line).unwrap_or_else(|e| panic!("JSONL line {i} must parse: {e}\n{line}"));
        for key in ["level", "op", "resource", "process", "outcome"] {
            assert!(
                obj.get(key).and_then(Json::as_str).is_some(),
                "JSONL line {i} missing string field '{key}'"
            );
        }
        for key in ["start_ps", "end_ps", "bytes"] {
            assert!(
                obj.get(key).and_then(Json::as_num).is_some(),
                "JSONL line {i} missing numeric field '{key}'"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chrome_checker_accepts_documented_shape() {
        let text = concat!(
            "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[",
            "{\"ph\":\"M\",\"pid\":0,\"tid\":0,\"name\":\"thread_name\",\"args\":{\"name\":\"p\"}},",
            "{\"ph\":\"X\",\"pid\":0,\"tid\":0,\"cat\":\"ship\",\"name\":\"send\",\"ts\":1,\"dur\":2,",
            "\"args\":{\"resource\":\"ch0\",\"bytes\":64,\"outcome\":\"ok\"}}",
            "]}"
        );
        let shape = check_chrome_trace(text).unwrap();
        assert_eq!(shape.metadata, 1);
        assert_eq!(shape.complete, 1);
        assert_eq!(shape.categories, vec!["ship".to_string()]);
    }

    #[test]
    fn chrome_checker_rejects_bad_shapes() {
        assert!(check_chrome_trace("{\"traceEvents\":[]}").is_err());
        assert!(check_chrome_trace(
            "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[{\"ph\":\"Q\"}]}"
        )
        .is_err());
        assert!(check_chrome_trace(
            "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[{\"ph\":\"X\",\"cat\":\"nope\",\"ts\":0,\"dur\":0,\"args\":{}}]}"
        )
        .is_err());
    }

    #[test]
    fn causal_checker_accepts_a_real_export_and_checks_nesting() {
        use shiptlm_kernel::causal::{CausalSpan, CausalTrace, TraceCtx, TRACK_HOST};
        let ctx = TraceCtx::mint();
        let root = CausalSpan::new(ctx, "job", "job:1", TRACK_HOST).at(0, 100);
        let child = CausalSpan::new(ctx.child(root.span_id), "gateway", "job:1", TRACK_HOST)
            .at(10, 80)
            .arg("outcome", "miss");
        let grand =
            CausalSpan::new(ctx.child(child.span_id), "exec", "sweep", TRACK_HOST).at(20, 60);
        let trace = CausalTrace::new(vec![root, child, grand]);
        let shape = check_causal_trace(&trace.to_chrome_json()).unwrap();
        assert_eq!(shape.spans.len(), 3);
        assert_eq!(shape.trace_id.len(), 16, "trace id renders as 16 hex chars");
        shape.assert_nested("gateway", "job");
        shape.assert_nested("exec", "gateway");
        assert_eq!(shape.parent_stage(shape.stage("job")[0]), None);
    }

    #[test]
    fn causal_checker_rejects_broken_causality() {
        let bad = |events: &str| {
            check_causal_trace(&format!(
                "{{\"displayTimeUnit\":\"ns\",\"traceEvents\":[{events}]}}"
            ))
        };
        let span = |id: u64, parent: u64, tid: &str| {
            format!(
                "{{\"ph\":\"X\",\"pid\":0,\"tid\":0,\"cat\":\"job\",\"name\":\"s{id}\",\"ts\":0,\"dur\":1,\
                 \"args\":{{\"trace_id\":\"{tid}\",\"span_id\":{id},\"parent_id\":{parent}}}}}"
            )
        };
        // Two different trace ids.
        let mixed = format!("{},{}", span(1, 0, "aa"), span(2, 1, "bb"));
        assert!(bad(&mixed).unwrap_err().contains("trace id"));
        // Parent outside the trace.
        assert!(bad(&span(1, 99, "aa")).unwrap_err().contains("not in the trace"));
        // Duplicate span ids.
        let dup = format!("{},{}", span(1, 0, "aa"), span(1, 0, "aa"));
        assert!(bad(&dup).unwrap_err().contains("duplicate"));
        // Parent cycle (2 -> 3 -> 2).
        let cycle = format!("{},{},{}", span(1, 0, "aa"), span(2, 3, "aa"), span(3, 2, "aa"));
        assert!(bad(&cycle).unwrap_err().contains("cycle"));
        // No root at all is unreachable without a cycle or an escape, so
        // the empty trace is the remaining edge.
        assert!(bad("").unwrap_err().contains("no complete events"));
    }

    #[test]
    fn empty_trace_passes_every_assert() {
        let trace = TxnTrace::default();
        assert_spans_consistent(&trace);
        let shape = assert_chrome_export(&trace);
        assert_eq!(shape.complete, 0);
        assert_jsonl_export(&trace);
    }
}
