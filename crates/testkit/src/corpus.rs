//! Replayable conformance cases — the shrunk-repro corpus format.
//!
//! Every failure the harness shrinks is serialized as one JSON document
//! holding the minimal [`ModelSpec`], the architecture description, the
//! injected [`FaultPlan`] (if any) and the expected outcome. Checked-in
//! corpus files under `tests/corpus/` replay as regression tests; freshly
//! shrunk failures are written next to the test binary for triage.

use std::path::Path;

use shiptlm_cam::arb::ArbPolicy;
use shiptlm_explore::arch::{ArchSpec, BusKind};
use shiptlm_kernel::time::SimDur;

use crate::diff::FailureKind;
use crate::faults::FaultPlan;
use crate::json::Json;
use crate::model::ModelSpec;

/// What a corpus case is expected to do when replayed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Expectation {
    /// The conformance check passes at every level.
    Pass,
    /// The check fails with this classification.
    Fail(FailureKind),
}

/// One replayable conformance case.
#[derive(Debug, Clone)]
pub struct CorpusCase {
    /// The (usually shrunk) model.
    pub spec: ModelSpec,
    /// Target architecture.
    pub arch: ArchSpec,
    /// Injected fault, if any.
    pub fault: Option<FaultPlan>,
    /// Expected replay outcome.
    pub expect: Expectation,
}

fn failure_kind_label(k: FailureKind) -> &'static str {
    match k {
        FailureKind::Map => "map",
        FailureKind::Behavior => "behavior",
        FailureKind::Timeout => "timeout",
        FailureKind::Divergence => "divergence",
        FailureKind::LatencyOrder => "latency-order",
        FailureKind::Hang => "hang",
    }
}

fn failure_kind_from_label(s: &str) -> Result<FailureKind, String> {
    Ok(match s {
        "map" => FailureKind::Map,
        "behavior" => FailureKind::Behavior,
        "timeout" => FailureKind::Timeout,
        "divergence" => FailureKind::Divergence,
        "latency-order" => FailureKind::LatencyOrder,
        "hang" => FailureKind::Hang,
        other => return Err(format!("unknown failure kind '{other}'")),
    })
}

/// Serializes an [`ArchSpec`] to the corpus JSON object — shared with the
/// gateway's self-describing JSON codec so job documents and replayable
/// corpus cases stay one format.
pub fn arch_to_json(a: &ArchSpec) -> Json {
    let mut fields = vec![
        (
            "bus",
            Json::str(match a.bus {
                BusKind::Plb => "plb",
                BusKind::Opb => "opb",
                BusKind::Crossbar => "crossbar",
                BusKind::Ahb => "ahb",
                BusKind::Noc { .. } => "noc",
            }),
        ),
        ("burst_bytes", Json::num(a.burst_bytes as f64)),
        ("rx_capacity", Json::num(a.rx_capacity as f64)),
        ("poll_interval_ps", Json::u64_str(a.poll_interval.as_ps())),
    ];
    if let BusKind::Noc { cols, rows } = a.bus {
        fields.push(("cols", Json::num(cols as f64)));
        fields.push(("rows", Json::num(rows as f64)));
    }
    // Emitted only when set, so pre-AHB corpus documents stay byte-stable.
    if a.split_slaves {
        fields.push(("split", Json::Bool(true)));
    }
    if let Some(c) = a.clock {
        fields.push(("clock_ps", Json::u64_str(c.as_ps())));
    }
    match a.arb {
        ArbPolicy::FixedPriority => fields.push(("arb", Json::str("priority"))),
        ArbPolicy::RoundRobin => fields.push(("arb", Json::str("round-robin"))),
        ArbPolicy::Tdma { slot, slots } => {
            fields.push(("arb", Json::str("tdma")));
            fields.push(("tdma_slot_ps", Json::u64_str(slot.as_ps())));
            fields.push(("tdma_slots", Json::num(slots as f64)));
        }
    }
    Json::obj(fields)
}

/// Parses an [`ArchSpec`] from its corpus JSON object (see
/// [`arch_to_json`]).
///
/// # Errors
///
/// Returns a description of the first missing or malformed field.
pub fn arch_from_json(v: &Json) -> Result<ArchSpec, String> {
    let mut arch = match v.get("bus").and_then(Json::as_str) {
        Some("plb") => ArchSpec::plb(),
        Some("opb") => ArchSpec::opb(),
        Some("crossbar") => ArchSpec::crossbar(),
        Some("ahb") => ArchSpec::ahb(),
        Some("noc") => {
            let cols = v
                .get("cols")
                .and_then(Json::as_num)
                .ok_or("noc arch missing 'cols'")? as u8;
            let rows = v
                .get("rows")
                .and_then(Json::as_num)
                .ok_or("noc arch missing 'rows'")? as u8;
            ArchSpec::noc(cols, rows)
        }
        other => return Err(format!("unknown bus kind {other:?}")),
    };
    if let Some(s) = v.get("split").and_then(Json::as_bool) {
        arch.split_slaves = s;
    }
    arch.arb = match v.get("arb").and_then(Json::as_str) {
        Some("priority") => ArbPolicy::FixedPriority,
        Some("round-robin") => ArbPolicy::RoundRobin,
        Some("tdma") => ArbPolicy::Tdma {
            slot: SimDur::ps(
                v.get("tdma_slot_ps")
                    .and_then(Json::as_u64_str)
                    .ok_or("tdma arch missing 'tdma_slot_ps'")?,
            ),
            slots: v
                .get("tdma_slots")
                .and_then(Json::as_num)
                .ok_or("tdma arch missing 'tdma_slots'")? as usize,
        },
        other => return Err(format!("unknown arbitration {other:?}")),
    };
    if let Some(b) = v.get("burst_bytes").and_then(Json::as_num) {
        arch.burst_bytes = b as usize;
    }
    if let Some(c) = v.get("rx_capacity").and_then(Json::as_num) {
        arch.rx_capacity = c as usize;
    }
    if let Some(p) = v.get("poll_interval_ps").and_then(Json::as_u64_str) {
        arch.poll_interval = SimDur::ps(p);
    }
    if let Some(c) = v.get("clock_ps").and_then(Json::as_u64_str) {
        arch.clock = Some(SimDur::ps(c));
    }
    Ok(arch)
}

impl CorpusCase {
    /// Serializes the case to its JSON document.
    pub fn to_json(&self) -> Json {
        let mut fields = vec![
            ("model", self.spec.to_json()),
            ("arch", arch_to_json(&self.arch)),
            (
                "expect",
                match self.expect {
                    Expectation::Pass => Json::str("pass"),
                    Expectation::Fail(k) => Json::str(failure_kind_label(k)),
                },
            ),
        ];
        if let Some(fault) = &self.fault {
            fields.push(("fault", fault.to_json()));
        }
        Json::obj(fields)
    }

    /// Rebuilds a case from its [`to_json`](Self::to_json) form.
    ///
    /// # Errors
    ///
    /// Returns a description of the first missing or malformed field.
    pub fn from_json(v: &Json) -> Result<CorpusCase, String> {
        Ok(CorpusCase {
            spec: ModelSpec::from_json(v.get("model").ok_or("case missing 'model'")?)?,
            arch: arch_from_json(v.get("arch").ok_or("case missing 'arch'")?)?,
            fault: v.get("fault").map(FaultPlan::from_json).transpose()?,
            expect: match v.get("expect").and_then(Json::as_str) {
                Some("pass") => Expectation::Pass,
                Some(label) => Expectation::Fail(failure_kind_from_label(label)?),
                None => return Err("case missing 'expect'".into()),
            },
        })
    }

    /// Parses one corpus file.
    ///
    /// # Errors
    ///
    /// Returns a description of the I/O or parse failure.
    pub fn load(path: &Path) -> Result<CorpusCase, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("reading {}: {e}", path.display()))?;
        let doc = Json::parse(&text).map_err(|e| format!("parsing {}: {e}", path.display()))?;
        CorpusCase::from_json(&doc)
    }

    /// Loads every `*.json` case in `dir`, sorted by file name; an absent
    /// directory yields an empty corpus.
    ///
    /// # Errors
    ///
    /// Returns the first I/O or parse failure.
    pub fn load_dir(dir: &Path) -> Result<Vec<(String, CorpusCase)>, String> {
        let mut out = Vec::new();
        let entries = match std::fs::read_dir(dir) {
            Ok(e) => e,
            Err(_) => return Ok(out),
        };
        let mut paths: Vec<_> = entries
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.extension().is_some_and(|x| x == "json"))
            .collect();
        paths.sort();
        for p in paths {
            let name = p
                .file_stem()
                .and_then(|s| s.to_str())
                .unwrap_or("case")
                .to_string();
            out.push((name, CorpusCase::load(&p)?));
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::{FaultKind, FaultSite};
    use crate::model::GenConfig;

    #[test]
    fn corpus_case_roundtrip() {
        let case = CorpusCase {
            spec: ModelSpec::random(77, &GenConfig::default()),
            arch: ModelSpec::random_arch(77),
            fault: Some(FaultPlan {
                channel: "m0.ch0".into(),
                kind: FaultKind::CorruptSend { nth: 0 },
                site: FaultSite::Mapped,
            }),
            expect: Expectation::Fail(FailureKind::Divergence),
        };
        let text = case.to_json().to_string();
        let back = CorpusCase::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back.spec, case.spec);
        assert_eq!(back.fault, case.fault);
        assert_eq!(back.expect, case.expect);
        assert_eq!(back.arch.label(), case.arch.label());
        assert_eq!(back.arch.rx_capacity, case.arch.rx_capacity);
    }

    #[test]
    fn new_family_archs_roundtrip_through_json() {
        for arch in [
            ArchSpec::ahb(),
            ArchSpec::ahb().with_split(true),
            ArchSpec::noc(4, 4),
            ArchSpec::noc(16, 16),
        ] {
            let text = arch_to_json(&arch).to_string();
            let back = arch_from_json(&Json::parse(&text).unwrap()).unwrap();
            assert_eq!(back, arch, "{text}");
        }
        // A noc document without mesh dimensions is malformed, not a panic.
        assert!(arch_from_json(&Json::parse(r#"{"bus":"noc","arb":"round-robin"}"#).unwrap())
            .is_err());
    }
}
