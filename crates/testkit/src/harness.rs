//! The seeded conformance harness: generate, check, shrink, persist.
//!
//! [`run_conformance`] drives N randomly generated system models through
//! the differential checker ([`check_model`]) against per-case random
//! architectures. Every case is fully determined by `(base_seed, index)`,
//! so a CI failure reproduces locally from the printed seed alone. Failing
//! cases are shrunk to a minimal reproduction and written as replayable
//! corpus JSON for triage.
//!
//! `TESTKIT_CASES` / `TESTKIT_SEED` environment variables override the
//! configured case count and base seed without recompiling.

use std::path::PathBuf;

use crate::corpus::{CorpusCase, Expectation};
use crate::diff::{check_model, CheckConfig, Failure};
use crate::model::{GenConfig, ModelSpec};
use crate::shrink::{shrink, ShrinkConfig, ShrinkResult};

/// Configuration of one harness run.
#[derive(Debug, Clone)]
pub struct HarnessConfig {
    /// Number of generated cases.
    pub cases: usize,
    /// Base seed; case `i` derives its own seed from it.
    pub seed: u64,
    /// Generator bounds.
    pub gen: GenConfig,
    /// Every `partition_every`-th case also runs the HW/SW-partitioned
    /// target (0 disables partitioned runs).
    pub partition_every: usize,
    /// Where shrunk reproductions are written (`None` keeps them in
    /// memory only).
    pub repro_dir: Option<PathBuf>,
    /// Shrink budget for failing cases.
    pub shrink: ShrinkConfig,
}

impl Default for HarnessConfig {
    fn default() -> Self {
        HarnessConfig {
            cases: 50,
            seed: 0x0054_171A_B1E5,
            gen: GenConfig::default(),
            partition_every: 5,
            repro_dir: None,
            shrink: ShrinkConfig::default(),
        }
    }
}

impl HarnessConfig {
    /// Applies `TESTKIT_CASES` and `TESTKIT_SEED` environment overrides.
    pub fn from_env(mut self) -> Self {
        if let Some(n) = std::env::var("TESTKIT_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
        {
            self.cases = n;
        }
        if let Some(s) = std::env::var("TESTKIT_SEED")
            .ok()
            .and_then(|v| v.parse().ok())
        {
            self.seed = s;
        }
        self
    }

    /// The seed of case `index` — a SplitMix64 step over the base seed, so
    /// neighbouring cases are uncorrelated.
    pub fn case_seed(&self, index: usize) -> u64 {
        let mut z = self
            .seed
            .wrapping_add((index as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// One failing case, shrunk and (optionally) persisted.
#[derive(Debug)]
pub struct CaseFailure {
    /// Index of the case within the run.
    pub index: usize,
    /// The case's derived seed.
    pub seed: u64,
    /// The original failure.
    pub failure: Failure,
    /// The shrunk minimal reproduction.
    pub minimal: ModelSpec,
    /// Shrink statistics.
    pub shrink: (usize, usize),
    /// Where the reproduction was written, if a repro dir was configured.
    pub repro_path: Option<PathBuf>,
}

/// Aggregate outcome of a harness run.
#[derive(Debug)]
pub struct HarnessReport {
    /// Cases executed.
    pub cases: usize,
    /// Cases that passed every level.
    pub passed: usize,
    /// Cases that additionally ran the HW/SW-partitioned target.
    pub partitioned_runs: usize,
    /// Passing cases whose `Target::DirectCA` leg actually executed on the
    /// direct backend (with no fault hooks, this should equal `passed`).
    pub direct_runs: usize,
    /// SHIP operations observed at the reference level, summed over
    /// passing cases.
    pub ship_ops: usize,
    /// Shrunk failures.
    pub failures: Vec<CaseFailure>,
}

impl HarnessReport {
    /// `true` when every case passed.
    pub fn all_passed(&self) -> bool {
        self.failures.is_empty()
    }

    /// One line per failure: seed, classification, where the repro went.
    pub fn failure_summary(&self) -> String {
        let mut out = String::new();
        for f in &self.failures {
            out.push_str(&format!(
                "case {} (seed {}): {}\n  minimal: {} motif(s), {} PE(s){}\n",
                f.index,
                f.seed,
                f.failure,
                f.minimal.motifs.len(),
                f.minimal.pe_names().len(),
                f.repro_path
                    .as_ref()
                    .map(|p| format!("\n  repro: {}", p.display()))
                    .unwrap_or_default(),
            ));
        }
        out
    }
}

/// Shrinks `spec` while the check keeps failing with the same
/// [`FailureKind`](crate::diff::FailureKind) as `original`, then packages
/// the minimal spec as a replayable [`CorpusCase`].
pub fn shrink_failure(
    spec: &ModelSpec,
    cfg: &CheckConfig,
    original: &Failure,
    budget: &ShrinkConfig,
) -> (ShrinkResult, CorpusCase) {
    let kind = original.kind;
    let result = shrink(
        spec,
        budget,
        |cand| matches!(check_model(cand, cfg), Err(f) if f.kind == kind),
    );
    let case = CorpusCase {
        spec: result.minimal.clone(),
        arch: cfg.arch.clone(),
        fault: cfg.fault.clone(),
        expect: Expectation::Fail(kind),
    };
    (result, case)
}

/// Runs the full generate → check → shrink → persist loop.
pub fn run_conformance(cfg: &HarnessConfig) -> HarnessReport {
    let mut report = HarnessReport {
        cases: cfg.cases,
        passed: 0,
        partitioned_runs: 0,
        direct_runs: 0,
        ship_ops: 0,
        failures: Vec::new(),
    };
    if let Some(dir) = &cfg.repro_dir {
        let _ = std::fs::create_dir_all(dir);
    }
    for index in 0..cfg.cases {
        let seed = cfg.case_seed(index);
        let spec = ModelSpec::random(seed, &cfg.gen);
        let mut check = CheckConfig::new(ModelSpec::random_arch(seed));
        check.partition = cfg.partition_every > 0 && index % cfg.partition_every == 0;
        match check_model(&spec, &check) {
            Ok(pass) => {
                report.passed += 1;
                report.ship_ops += pass.ship_ops;
                if check.partition {
                    report.partitioned_runs += 1;
                }
                if pass.direct_used {
                    report.direct_runs += 1;
                }
            }
            Err(failure) => {
                let (shrunk, case) = shrink_failure(&spec, &check, &failure, &cfg.shrink);
                let repro_path = cfg.repro_dir.as_ref().map(|dir| {
                    let path = dir.join(format!("case-{index}-seed-{seed}.json"));
                    let _ = std::fs::write(&path, case.to_json().to_string());
                    path
                });
                report.failures.push(CaseFailure {
                    index,
                    seed,
                    failure,
                    minimal: shrunk.minimal,
                    shrink: (shrunk.evals, shrunk.accepted),
                    repro_path,
                });
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn case_seeds_are_distinct() {
        let cfg = HarnessConfig::default();
        let mut seeds: Vec<u64> = (0..64).map(|i| cfg.case_seed(i)).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), 64);
    }

    #[test]
    fn seeds_are_stable_across_runs() {
        let cfg = HarnessConfig {
            seed: 42,
            ..HarnessConfig::default()
        };
        assert_eq!(cfg.case_seed(0), cfg.case_seed(0));
        assert_ne!(cfg.case_seed(0), cfg.case_seed(1));
    }
}
