//! The cross-level differential conformance check.
//!
//! One [`ModelSpec`] is elaborated and run at up to seven targets — the
//! untimed component-assembly reference, the same untimed model on the
//! direct-execution backend, CCATB runs on an AHB SPLIT/RETRY bus and a
//! 4×4 mesh NoC, the CCATB model on the configured architecture, the
//! pin-accurate prototype, and a HW/SW-partitioned run — and the checker
//! asserts:
//!
//! 1. **Content equivalence**: every refined level's per-(channel, port)
//!    stream of `(op, len, digest)` triples equals the reference's
//!    ([`TransactionLog::content_equivalent`]).
//! 2. **Latency monotonicity**: timing refinement only *adds* time over
//!    the untimed reference — `untimed ≤ CCATB` and `untimed ≤
//!    pin-accurate` total simulated time. The two timed levels are not
//!    mutually ordered: CCATB estimates bus occupancy at burst granularity
//!    and may legitimately over- or under-shoot the pin-accurate schedule.
//! 3. **No silent hangs**: a run that ends on its simulated-time bound or
//!    with a PE still blocked in a kernel wait is a conformance failure
//!    with the kernel's deadlock diagnosis attached, never a quiet pass.
//!
//! PE behaviours may panic (in-app content asserts, `unwrap` on
//! [`ShipError::Timeout`](shiptlm_ship::error::ShipError)); the kernel
//! re-raises those on the driving thread, and the checker converts them
//! into classified [`Failure`]s instead of aborting the whole harness.

use std::panic::{self, AssertUnwindSafe};

use shiptlm::partition::{run_partitioned_with, Partition};
use shiptlm_explore::arch::{ArchSpec, BusKind};
use shiptlm_explore::mapper::{
    run_component_assembly_with, run_mapped_with, run_pin_accurate_with, Backend, RunOptions,
    RunOutput,
};
use shiptlm_kernel::time::SimDur;
use shiptlm_kernel::StopReason;
use shiptlm_ship::record::TransactionLog;

use crate::faults::FaultPlan;
use crate::model::ModelSpec;

/// One execution target of the differential checker, in refinement order.
/// [`Failure::level`] and [`PassReport::times`] use these targets' labels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Target {
    /// The untimed component-assembly reference on the DE kernel.
    ComponentAssembly,
    /// The untimed model (compute delays stripped) on the direct-execution
    /// backend — same abstraction level as the reference, different
    /// scheduler, so its content streams must match exactly.
    DirectCA,
    /// The model mapped onto an AHB bus with SPLIT-capable slaves
    /// (CCATB granularity), exercising bus-release/re-grant arbitration.
    AhbCA,
    /// The model mapped onto a 4×4 mesh NoC (CCATB granularity),
    /// exercising XY routing and per-link arbitration.
    NocCA,
    /// The CCATB mapped level.
    Ccatb,
    /// The pin-accurate prototype level.
    PinAccurate,
    /// The HW/SW-partitioned target.
    Partitioned,
}

impl Target {
    /// The level label used in failures and pass reports.
    pub fn label(self) -> &'static str {
        match self {
            Target::ComponentAssembly => "component-assembly",
            Target::DirectCA => "direct-ca",
            Target::AhbCA => "ahb-ca",
            Target::NocCA => "noc-ca",
            Target::Ccatb => "ccatb",
            Target::PinAccurate => "pin-accurate",
            Target::Partitioned => "partitioned",
        }
    }
}

/// How to run one conformance check.
#[derive(Debug, Clone)]
pub struct CheckConfig {
    /// Target architecture for the mapped levels.
    pub arch: ArchSpec,
    /// Also run the pin-accurate prototype level.
    pub pin_level: bool,
    /// Also run the untimed model on the direct-execution backend
    /// ([`Target::DirectCA`]) and require content equivalence with the DE
    /// reference. Uses [`Backend::Auto`]: a model a fault hook re-timed
    /// falls back to the DE kernel instead of failing spuriously;
    /// [`PassReport::direct_used`] records whether direct actually ran.
    pub direct_ca: bool,
    /// Also run the model mapped onto an AHB bus with SPLIT-capable slaves
    /// ([`Target::AhbCA`]). The leg reuses this config's wrapper knobs
    /// (burst, mailbox depth, polling, arbitration) so a corpus case tunes
    /// its replay cost, but pins the topology to
    /// [`BusKind::Ahb`] + split.
    pub ahb_ca: bool,
    /// Also run the model mapped onto a 4×4 mesh NoC ([`Target::NocCA`]);
    /// wrapper knobs are reused the same way as for the AHB leg.
    pub noc_ca: bool,
    /// Also run a HW/SW-partitioned target (one master PE per motif moved
    /// to software).
    pub partition: bool,
    /// Fault to inject, if any.
    pub fault: Option<FaultPlan>,
    /// SHIP call timeout at the component-assembly level; converts
    /// would-be infinite blocking into `ShipError::Timeout`.
    pub ship_timeout: SimDur,
    /// Simulated-time bound for every run; mapped-level polling loops keep
    /// simulated time advancing forever under a dropped message, so hangs
    /// terminate here with [`StopReason::TimeLimit`].
    pub time_limit: SimDur,
    /// Record transaction traces ([`RunOptions::record_txns`]) during the
    /// runs.
    pub record: bool,
}

impl CheckConfig {
    /// A conformance check against `arch` with defaults sized for
    /// generated models: CCATB always, a 100 ms simulated-time bound and a
    /// 10 ms SHIP call timeout (orders of magnitude above any healthy
    /// generated model's runtime).
    pub fn new(arch: ArchSpec) -> Self {
        CheckConfig {
            arch,
            pin_level: true,
            direct_ca: true,
            ahb_ca: true,
            noc_ca: true,
            partition: false,
            fault: None,
            ship_timeout: SimDur::ms(10),
            time_limit: SimDur::ms(100),
            record: false,
        }
    }

    fn options(&self) -> RunOptions {
        let mut opts = RunOptions::default()
            .with_ship_timeout(self.ship_timeout)
            .with_time_limit(self.time_limit);
        if self.record {
            opts.record_txns = Some(1 << 16);
        }
        if let Some(fault) = &self.fault {
            opts = opts.with_port_hook(fault.hook());
        }
        opts
    }

    /// The architecture the [`Target::AhbCA`] leg maps onto: this config's
    /// wrapper knobs on an AHB bus with SPLIT-capable slaves and the preset
    /// clock.
    pub fn ahb_leg_arch(&self) -> ArchSpec {
        let mut arch = self.arch.clone();
        arch.bus = BusKind::Ahb;
        arch.split_slaves = true;
        arch.clock = None;
        arch
    }

    /// The architecture the [`Target::NocCA`] leg maps onto: this config's
    /// wrapper knobs on a 4×4 mesh NoC with the preset link clock.
    pub fn noc_leg_arch(&self) -> ArchSpec {
        let mut arch = self.arch.clone();
        arch.bus = BusKind::Noc { cols: 4, rows: 4 };
        arch.split_slaves = false;
        arch.clock = None;
        arch
    }
}

/// Conformance failure classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureKind {
    /// Role detection / channel mapping failed.
    Map,
    /// A PE behaviour panicked (bad content observed in-app, protocol
    /// violation, …).
    Behavior,
    /// A SHIP call timed out (the bounded surface of a dropped message at
    /// the component-assembly level).
    Timeout,
    /// A refined level's content streams diverged from the reference.
    Divergence,
    /// Simulated time shrank under refinement.
    LatencyOrder,
    /// The run hit its simulated-time bound or left a PE blocked in a
    /// kernel wait.
    Hang,
}

/// One conformance failure, tagged with the level it was observed at.
#[derive(Debug, Clone)]
pub struct Failure {
    /// Classification.
    pub kind: FailureKind,
    /// Level label: `component-assembly`, `ccatb`, `pin-accurate` or
    /// `partitioned`.
    pub level: &'static str,
    /// Human-readable details (equivalence error, panic message, deadlock
    /// diagnosis, …).
    pub detail: String,
}

impl std::fmt::Display for Failure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{:?} @ {}] {}", self.kind, self.level, self.detail)
    }
}

/// Evidence from a passing conformance check.
#[derive(Debug, Clone)]
pub struct PassReport {
    /// SHIP operations recorded at the reference level (sends + recvs +
    /// requests + replies over all channels).
    pub ship_ops: usize,
    /// Number of targets run (reference + refined levels).
    pub levels: usize,
    /// Simulated times per level, in refinement order.
    pub times: Vec<(&'static str, SimDur)>,
    /// `true` when the [`Target::DirectCA`] leg ran on the direct backend
    /// (rather than being disabled or falling back to the DE kernel).
    pub direct_used: bool,
}

fn classify_panic(level: &'static str, payload: Box<dyn std::any::Any + Send>) -> Failure {
    let msg = payload
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
        .unwrap_or_else(|| "unknown panic payload".to_string());
    let kind = if msg.contains("Timeout") || msg.contains("timed out") {
        FailureKind::Timeout
    } else {
        FailureKind::Behavior
    };
    Failure {
        kind,
        level,
        detail: msg,
    }
}

/// Checks one level's [`RunOutput`] for hangs: a time-limit / watchdog stop
/// is always a hang, and so is any liveness diagnosis naming a PE of the
/// model (infrastructure processes such as clocks or the RTOS idle loop are
/// ignored).
fn check_liveness(
    level: &'static str,
    out: &RunOutput,
    pe_names: &[String],
) -> Result<(), Failure> {
    if matches!(out.reason, StopReason::TimeLimit | StopReason::Watchdog) {
        let diag = out
            .diagnosis
            .as_ref()
            .map(|d| format!("\n{d}"))
            .unwrap_or_default();
        return Err(Failure {
            kind: FailureKind::Hang,
            level,
            detail: format!("run cut off by {}{diag}", out.reason),
        });
    }
    if let Some(diag) = &out.diagnosis {
        let stuck: Vec<&str> = diag
            .blocked
            .iter()
            .filter(|b| pe_names.iter().any(|pe| pe == &b.name))
            .map(|b| b.name.as_str())
            .collect();
        if !stuck.is_empty() {
            return Err(Failure {
                kind: FailureKind::Hang,
                level,
                detail: format!("PEs {stuck:?} left blocked:\n{diag}"),
            });
        }
    }
    Ok(())
}

fn check_equivalence(
    level: &'static str,
    reference: &TransactionLog,
    refined: &TransactionLog,
) -> Result<(), Failure> {
    refined.content_equivalent(reference).map_err(|e| Failure {
        kind: FailureKind::Divergence,
        level,
        detail: e.to_string(),
    })
}

/// Runs `spec` through every configured target and checks conformance.
///
/// # Errors
///
/// Returns the first [`Failure`] observed, in refinement order (reference
/// level first).
pub fn check_model(spec: &ModelSpec, cfg: &CheckConfig) -> Result<PassReport, Failure> {
    let pe_names = spec.pe_names();
    // Fresh options per level: the fault hook carries a per-run send
    // counter, which must restart from zero at every level.
    let opts = cfg.options();

    // Reference: untimed component assembly, also yields channel roles.
    let app = spec.to_app();
    let ca = panic::catch_unwind(AssertUnwindSafe(|| {
        run_component_assembly_with(&app, &opts)
    }))
    .map_err(|p| classify_panic("component-assembly", p))?
    .map_err(|e| Failure {
        kind: FailureKind::Map,
        level: "component-assembly",
        detail: e.to_string(),
    })?;
    check_liveness("component-assembly", &ca.output, &pe_names)?;

    let mut times = vec![("component-assembly", ca.output.sim_time)];
    let mut levels = 1;

    // Direct-execution differential: the same untimed level, scheduled by
    // free-running threads instead of the delta-cycle event queue, must
    // deliver the exact same per-(channel, port) streams.
    let mut direct_used = false;
    if cfg.direct_ca {
        let level = Target::DirectCA.label();
        let untimed = spec.untimed();
        let app = untimed.to_app();
        let opts = cfg.options().with_backend(Backend::Auto);
        let dca = panic::catch_unwind(AssertUnwindSafe(|| {
            run_component_assembly_with(&app, &opts)
        }))
        .map_err(|p| classify_panic(level, p))?
        .map_err(|e| Failure {
            kind: FailureKind::Map,
            level,
            detail: e.to_string(),
        })?;
        check_liveness(level, &dca.output, &pe_names)?;
        check_equivalence(level, &ca.output.log, &dca.output.log)?;
        direct_used = dca.backend.used == Backend::Direct;
        times.push((level, dca.output.sim_time));
        levels += 1;
    }

    // New-interconnect differential legs: the same model at CCATB
    // granularity, mapped once onto an AHB bus with SPLIT-capable slaves
    // and once onto a 4×4 mesh NoC. These run *before* the configured-arch
    // CCATB leg so a fault at the mapped site classifies at the first
    // refined level that sees it.
    let mut family_times: Vec<(&'static str, SimDur)> = Vec::new();
    for (enabled, target, arch) in [
        (cfg.ahb_ca, Target::AhbCA, cfg.ahb_leg_arch()),
        (cfg.noc_ca, Target::NocCA, cfg.noc_leg_arch()),
    ] {
        if !enabled {
            continue;
        }
        let level = target.label();
        let app = spec.to_app();
        let opts = cfg.options();
        let run = panic::catch_unwind(AssertUnwindSafe(|| {
            run_mapped_with(&app, &ca.roles, &arch, &opts)
        }))
        .map_err(|p| classify_panic(level, p))?
        .map_err(|e| Failure {
            kind: FailureKind::Map,
            level,
            detail: e.to_string(),
        })?;
        check_liveness(level, &run.output, &pe_names)?;
        check_equivalence(level, &ca.output.log, &run.output.log)?;
        times.push((level, run.output.sim_time));
        family_times.push((level, run.output.sim_time));
        levels += 1;
    }

    // CCATB.
    let app = spec.to_app();
    let opts = cfg.options();
    let ccatb = panic::catch_unwind(AssertUnwindSafe(|| {
        run_mapped_with(&app, &ca.roles, &cfg.arch, &opts)
    }))
    .map_err(|p| classify_panic("ccatb", p))?
    .map_err(|e| Failure {
        kind: FailureKind::Map,
        level: "ccatb",
        detail: e.to_string(),
    })?;
    check_liveness("ccatb", &ccatb.output, &pe_names)?;
    check_equivalence("ccatb", &ca.output.log, &ccatb.output.log)?;
    times.push(("ccatb", ccatb.output.sim_time));
    levels += 1;

    // Pin-accurate prototype.
    let pin_time = if cfg.pin_level {
        let app = spec.to_app();
        let opts = cfg.options();
        let pin = panic::catch_unwind(AssertUnwindSafe(|| {
            run_pin_accurate_with(&app, &ca.roles, &cfg.arch, &opts)
        }))
        .map_err(|p| classify_panic("pin-accurate", p))?
        .map_err(|e| Failure {
            kind: FailureKind::Map,
            level: "pin-accurate",
            detail: e.to_string(),
        })?;
        check_liveness("pin-accurate", &pin.output, &pe_names)?;
        check_equivalence("pin-accurate", &ca.output.log, &pin.output.log)?;
        times.push(("pin-accurate", pin.output.sim_time));
        levels += 1;
        Some(pin.output.sim_time)
    } else {
        None
    };

    // HW/SW-partitioned target: same roles, one master PE per motif in SW.
    if cfg.partition {
        let app = spec.to_app();
        let opts = cfg.options();
        let partition = Partition::software(spec.sw_candidates());
        let sw = panic::catch_unwind(AssertUnwindSafe(|| {
            run_partitioned_with(&app, &ca.roles, &cfg.arch, &partition, &opts)
        }))
        .map_err(|p| classify_panic("partitioned", p))?
        .map_err(|e| Failure {
            kind: FailureKind::Map,
            level: "partitioned",
            detail: e.to_string(),
        })?;
        check_liveness("partitioned", &sw.mapped.output, &pe_names)?;
        check_equivalence("partitioned", &ca.output.log, &sw.mapped.output.log)?;
        times.push(("partitioned", sw.mapped.output.sim_time));
        levels += 1;
    }

    // Latency monotonicity (only meaningful without injected timing
    // faults, which may legitimately reorder level timings).
    if cfg.fault.is_none() {
        if ccatb.output.sim_time < ca.output.sim_time {
            return Err(Failure {
                kind: FailureKind::LatencyOrder,
                level: "ccatb",
                detail: format!(
                    "ccatb finished at {} before the untimed reference's {}",
                    ccatb.output.sim_time, ca.output.sim_time
                ),
            });
        }
        // The interconnect-family legs are timed models too: each must be
        // at least as slow as the untimed reference. (Like CCATB vs pin,
        // the families are not ordered against *each other* — an AHB split
        // bus and a mesh have incomparable schedules.)
        for (level, t) in &family_times {
            if *t < ca.output.sim_time {
                return Err(Failure {
                    kind: FailureKind::LatencyOrder,
                    level,
                    detail: format!(
                        "{level} finished at {t} before the untimed reference's {}",
                        ca.output.sim_time
                    ),
                });
            }
        }
        // CCATB and pin-accurate are deliberately *not* ordered against
        // each other: CCATB's burst-granular bus estimate may land on
        // either side of the cycle-true pin schedule.
        if let Some(pt) = pin_time {
            if pt < ca.output.sim_time {
                return Err(Failure {
                    kind: FailureKind::LatencyOrder,
                    level: "pin-accurate",
                    detail: format!(
                        "pin-accurate finished at {pt} before the untimed reference's {}",
                        ca.output.sim_time
                    ),
                });
            }
        }
    }

    Ok(PassReport {
        ship_ops: ca.output.log.len(),
        levels,
        times,
        direct_used,
    })
}
