//! The cross-level differential conformance suite (the harness's own
//! acceptance tests): bulk random-model conformance across all abstraction
//! levels, fault-injection surfacing, and shrink-to-minimal-repro on a
//! deliberately seeded divergence.

use std::path::PathBuf;

use shiptlm_explore::arch::ArchSpec;
use shiptlm_explore::mapper::{run_component_assembly_with, run_mapped_with, RunOptions};
use shiptlm_kernel::time::SimDur;
use shiptlm_testkit::prelude::*;

/// A small deterministic producer→consumer model; `sizes` are the payload
/// lengths, `checks` controls in-app content asserts.
fn stream_spec(sizes: Vec<usize>, checks: bool) -> ModelSpec {
    ModelSpec {
        name: "stream-fixture".into(),
        seed: 0xF00D,
        motifs: vec![Motif::Stream { sizes }],
        app_checks: checks,
    }
}

/// The headline bulk run: ≥50 generated models, each mapped through the
/// untimed reference, CCATB and the pin-accurate prototype (every fifth
/// case additionally runs HW/SW-partitioned), with byte-identical
/// per-channel payload streams and monotone latency required throughout.
///
/// `TESTKIT_CASES` / `TESTKIT_SEED` override count and base seed;
/// `TESTKIT_REPRO_DIR` persists shrunk repros of any failure for CI
/// artifact upload.
#[test]
fn generated_models_conform_across_all_levels() {
    let mut cfg = HarnessConfig::default().from_env();
    cfg.repro_dir = std::env::var_os("TESTKIT_REPRO_DIR").map(PathBuf::from);
    let report = run_conformance(&cfg);
    assert!(
        report.all_passed(),
        "{} of {} generated models failed conformance (seed {}):\n{}",
        report.failures.len(),
        report.cases,
        cfg.seed,
        report.failure_summary()
    );
    assert_eq!(report.passed, cfg.cases);
    assert!(
        report.partitioned_runs >= 1,
        "at least one case must run the HW/SW-partitioned target"
    );
    assert_eq!(
        report.direct_runs, report.passed,
        "every passing case must exercise the direct-execution backend \
         (Target::DirectCA), not fall back to the DE kernel"
    );
    assert!(report.ship_ops > 0);
}

/// A deliberately seeded cross-level divergence — one payload byte flipped
/// below the recorder at the mapped levels only, with in-app checks
/// disabled so nothing but the differential check can see it — must be
/// caught, classified as divergence, and shrunk to a ≤3-PE reproduction
/// that replays from its serialized corpus form.
#[test]
fn seeded_divergence_is_caught_and_shrunk_to_minimal_repro() {
    let spec = ModelSpec {
        name: "seeded-divergence".into(),
        seed: 99,
        motifs: vec![
            Motif::Stream {
                sizes: vec![64, 32, 16],
            },
            Motif::Pipeline {
                stages: 3,
                blocks: 2,
                bytes: 32,
                compute_ns: 100,
            },
            Motif::Rpc {
                requests: 2,
                bytes: 24,
                compute_ns: 50,
            },
        ],
        app_checks: false,
    };
    assert!(spec.pe_names().len() > 3, "fixture must start non-minimal");

    let mut cfg = CheckConfig::new(ArchSpec::plb());
    cfg.fault = Some(FaultPlan {
        channel: "m0.ch0".into(),
        kind: FaultKind::CorruptSend { nth: 1 },
        site: FaultSite::Mapped,
    });

    let failure = check_model(&spec, &cfg).expect_err("corruption must not pass");
    assert_eq!(failure.kind, FailureKind::Divergence, "{failure}");
    // The AHB differential leg is the first mapped level to run, so a
    // mapped-site fault classifies there.
    assert_eq!(failure.level, "ahb-ca", "{failure}");
    assert!(
        failure.detail.contains("m0.ch0"),
        "divergence must name the corrupted channel: {failure}"
    );

    let (shrunk, case) = shrink_failure(&spec, &cfg, &failure, &ShrinkConfig::default());
    assert!(shrunk.accepted > 0, "fixture must shrink at least one step");
    assert!(
        shrunk.minimal.pe_names().len() <= 3,
        "minimal repro must have ≤3 PEs, got {:?}",
        shrunk.minimal
    );
    assert_eq!(shrunk.minimal.motifs.len(), 1);

    // The shrunk case replays identically from its serialized JSON form.
    let text = case.to_json().to_string();
    let back = CorpusCase::from_json(&Json::parse(&text).unwrap()).unwrap();
    let mut replay = CheckConfig::new(back.arch);
    replay.fault = back.fault;
    let replayed = check_model(&back.spec, &replay).expect_err("repro must still fail");
    assert_eq!(Expectation::Fail(replayed.kind), back.expect);
}

/// A dropped message at the untimed level surfaces as `ShipError::Timeout`
/// (the PE unwraps it), classified as a timeout at the reference level.
#[test]
fn dropped_send_surfaces_as_timeout_at_untimed_level() {
    let spec = stream_spec(vec![16], true);
    let mut cfg = CheckConfig::new(ArchSpec::plb());
    cfg.fault = Some(FaultPlan {
        channel: "m0.ch0".into(),
        kind: FaultKind::DropSend { nth: 0 },
        site: FaultSite::Untimed,
    });
    let failure = check_model(&spec, &cfg).expect_err("dropped message must not pass");
    assert_eq!(failure.kind, FailureKind::Timeout, "{failure}");
    assert_eq!(failure.level, "component-assembly");
    assert!(
        failure.detail.contains("Timeout"),
        "detail must carry the SHIP timeout: {failure}"
    );
}

/// The same drop at the mapped levels only — the reference stays clean —
/// is bounded by the simulated-time limit and reported as a hang at the
/// first mapped level (the AHB differential leg), never a silent pass.
#[test]
fn dropped_send_at_mapped_level_is_reported_as_hang() {
    let spec = stream_spec(vec![16], true);
    let mut cfg = CheckConfig::new(ArchSpec::plb());
    cfg.time_limit = SimDur::ms(1); // bound the hang tightly
    cfg.fault = Some(FaultPlan {
        channel: "m0.ch0".into(),
        kind: FaultKind::DropSend { nth: 0 },
        site: FaultSite::Mapped,
    });
    let failure = check_model(&spec, &cfg).expect_err("dropped message must not pass");
    assert_eq!(failure.kind, FailureKind::Hang, "{failure}");
    assert_eq!(failure.level, "ahb-ca");
}

/// The acceptance scenario for the SPLIT path: a message dropped below the
/// recorder while the model runs on an AHB bus with SPLIT-capable slaves
/// hangs at the AHB leg, shrinks while preserving the failure kind, and
/// the shrunk case replays from its serialized corpus form.
#[test]
fn split_drop_fault_shrinks_to_replayable_corpus_case() {
    let spec = ModelSpec {
        name: "split-drop".into(),
        seed: 0xAB5,
        motifs: vec![
            // A single message on the faulted channel: the drop leaves the
            // consumer blocked (a hang), not mid-stream on shifted content.
            Motif::Stream { sizes: vec![32] },
            Motif::FanIn {
                sources: 2,
                blocks: 1,
                bytes: 16,
            },
        ],
        app_checks: true,
    };
    let mut cfg = CheckConfig::new(ArchSpec::ahb().with_split(true));
    cfg.time_limit = SimDur::ms(1); // bound the hang tightly
    cfg.fault = Some(FaultPlan {
        channel: "m0.ch0".into(),
        kind: FaultKind::DropSend { nth: 0 },
        site: FaultSite::Mapped,
    });

    let failure = check_model(&spec, &cfg).expect_err("split-drop must not pass");
    assert_eq!(failure.kind, FailureKind::Hang, "{failure}");
    assert_eq!(failure.level, "ahb-ca", "{failure}");

    let (shrunk, case) = shrink_failure(&spec, &cfg, &failure, &ShrinkConfig::default());
    assert!(
        shrunk.minimal.motifs.len() <= spec.motifs.len(),
        "shrinking must not grow the model"
    );
    assert_eq!(case.expect, Expectation::Fail(FailureKind::Hang));

    // Roundtrip through JSON — the on-disk corpus format — and replay.
    let text = case.to_json().to_string();
    let back = CorpusCase::from_json(&Json::parse(&text).unwrap()).unwrap();
    assert!(back.arch.split_slaves, "split flag must survive the corpus form");
    let mut replay = CheckConfig::new(back.arch);
    replay.time_limit = SimDur::ms(1);
    replay.fault = back.fault;
    let replayed = check_model(&back.spec, &replay).expect_err("repro must still fail");
    assert_eq!(Expectation::Fail(replayed.kind), back.expect);
}

/// A duplicated message shifts the receiver's stream; with in-app checks
/// off, only the differential check can see it — and must.
#[test]
fn duplicated_send_surfaces_as_divergence() {
    let spec = stream_spec(vec![16, 16, 16], false);
    let mut cfg = CheckConfig::new(ArchSpec::plb());
    cfg.fault = Some(FaultPlan {
        channel: "m0.ch0".into(),
        kind: FaultKind::DuplicateSend { nth: 0 },
        site: FaultSite::Mapped,
    });
    let failure = check_model(&spec, &cfg).expect_err("duplicate must not pass");
    assert_eq!(failure.kind, FailureKind::Divergence, "{failure}");
}

/// A pure delay is timing-only: the equivalence relation ignores it, so
/// the check must pass (latency monotonicity is suspended under injected
/// timing faults).
#[test]
fn delayed_send_preserves_content_equivalence() {
    let spec = stream_spec(vec![16, 16], true);
    let mut cfg = CheckConfig::new(ArchSpec::plb());
    cfg.fault = Some(FaultPlan {
        channel: "m0.ch0".into(),
        kind: FaultKind::DelaySend {
            nth: 0,
            by: SimDur::us(5),
        },
        site: FaultSite::All,
    });
    let report = check_model(&spec, &cfg).expect("delay is content-invisible");
    assert!(report.levels >= 3);
}

/// Turning the transaction-trace recorder on must not change behaviour:
/// message sequences, simulated times and delta-cycle counts are identical
/// with recording on and off, at the untimed and the CCATB level.
#[test]
fn txn_recording_does_not_perturb_message_sequences() {
    let spec = ModelSpec::random(3, &GenConfig::default());
    let arch = ArchSpec::plb();

    let off = run_component_assembly_with(&spec.to_app(), &RunOptions::default()).unwrap();
    let on =
        run_component_assembly_with(&spec.to_app(), &RunOptions::with_recorder(1 << 16)).unwrap();
    assert!(off.output.txn.is_none());
    assert!(on.output.txn.is_some());
    on.output
        .log
        .content_equivalent(&off.output.log)
        .expect("recorder must not change untimed message streams");
    assert_eq!(off.output.sim_time, on.output.sim_time);
    assert_eq!(off.output.delta_cycles, on.output.delta_cycles);

    let moff = run_mapped_with(&spec.to_app(), &off.roles, &arch, &RunOptions::default()).unwrap();
    let mon = run_mapped_with(
        &spec.to_app(),
        &off.roles,
        &arch,
        &RunOptions::with_recorder(1 << 16),
    )
    .unwrap();
    mon.output
        .log
        .content_equivalent(&moff.output.log)
        .expect("recorder must not change CCATB message streams");
    assert_eq!(moff.output.sim_time, mon.output.sim_time);
    assert_eq!(moff.output.delta_cycles, mon.output.delta_cycles);

    // And the trace it produced is well-formed.
    let trace = mon.output.txn.unwrap();
    assert_spans_consistent(&trace);
    assert_chrome_export(&trace);
    assert_jsonl_export(&trace);
}

/// Zero-length payloads and partitioned runs: an explicit fixture with an
/// empty message must stay byte-identical across every level including the
/// HW/SW-partitioned target.
#[test]
fn zero_length_payloads_conform_including_partitioned() {
    let spec = stream_spec(vec![0, 64, 0, 1], true);
    let mut cfg = CheckConfig::new(ArchSpec::opb());
    cfg.partition = true;
    let report = check_model(&spec, &cfg).expect("zero-length payloads must conform");
    // reference, direct-ca, ahb-ca, noc-ca, ccatb, pin, partitioned
    assert_eq!(report.levels, 7);
    assert!(report.direct_used, "a pure stream model must run direct");
}
