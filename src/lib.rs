//! Meta-package hosting the workspace examples and integration tests.
pub use shiptlm;
