//! End-to-end causal tracing: one traced gateway job must yield a single
//! Chrome/Perfetto JSON in which client, gateway-stage, sweep, and kernel
//! txn spans share one trace id with correct parent/child nesting — and
//! the span-tree *shape* must not depend on how many threads ran the
//! sweep.

use std::collections::BTreeMap;

use shiptlm::explore::prelude::*;
use shiptlm::kernel::causal::{SpanSink, TraceCtx};
use shiptlm_gateway::prelude::*;
use shiptlm_testkit::asserts::check_causal_trace;
use shiptlm_testkit::model::{GenConfig, ModelSpec};

fn the_archs() -> Vec<ArchSpec> {
    vec![
        ArchSpec::plb(),
        ArchSpec::opb().with_burst(16),
        ArchSpec::crossbar(),
    ]
}

fn request(id: u64, spec: &ModelSpec) -> JobRequest {
    JobRequest {
        id,
        spec: spec.clone(),
        archs: the_archs(),
        backend: BackendChoice::De,
        want_trace: false,
        trace: None,
        want_progress: true,
    }
}

#[test]
fn traced_gateway_job_yields_one_causal_chrome_trace() {
    let gateway = Gateway::start(GatewayConfig::default()).unwrap();
    let mut client = GatewayClient::connect(gateway.addr(), &BIN).unwrap();
    let spec = ModelSpec::random(11, &GenConfig::default());
    let req = request(1, &spec);

    let (outcome, trace) = client.run_job_traced(&req).unwrap();
    assert_eq!(outcome.status, JobStatus::Done { cached: false });

    // Live introspection: samples arrived while the job ran, their content
    // is a pure function of the completed-candidate set, and the final
    // sample accounts for the whole sweep.
    assert!(!outcome.progress.is_empty(), "progress samples must stream");
    let last = outcome.progress.last().unwrap();
    assert_eq!(last.total, the_archs().len() as u64);
    assert_eq!(last.done + last.pruned, last.total);

    // The merged export passes the causal checker: one trace id, unique
    // span ids, closed parenting, no cycles.
    assert_eq!(trace.trace_ids().len(), 1, "exactly one trace id");
    let shape = check_causal_trace(&trace.to_chrome_json()).unwrap();

    // Client-to-kernel causality, layer by layer.
    shape.assert_nested("gateway", "job");
    shape.assert_nested("admission", "gateway");
    shape.assert_nested("queue-wait", "gateway");
    shape.assert_nested("cache", "gateway");
    shape.assert_nested("exec", "gateway");
    shape.assert_nested("role-detect", "exec");
    shape.assert_nested("candidate", "exec");
    shape.assert_nested("txn", "candidate");
    if !shape.stage("chunk").is_empty() {
        shape.assert_nested("chunk", "exec");
    }
    assert_eq!(shape.stage("job").len(), 1, "one client root");
    assert_eq!(
        shape.stage("candidate").len(),
        the_archs().len(),
        "one candidate span per architecture"
    );
    assert!(
        !shape.stage("txn").is_empty(),
        "kernel txn spans must be stitched under candidates"
    );

    // The same job again: served from cache, the sweep spans replayed
    // under the requester's *new* trace id, hanging off the cache lookup.
    let (again, trace2) = client.run_job_traced(&req).unwrap();
    assert_eq!(again.status, JobStatus::Done { cached: true });
    assert_eq!(again.rows, outcome.rows, "cached rows are byte-identical");
    let shape2 = check_causal_trace(&trace2.to_chrome_json()).unwrap();
    assert_ne!(
        shape.trace_id, shape2.trace_id,
        "each request gets its own trace id"
    );
    shape2.assert_nested("candidate", "cache");
    assert!(
        shape2.stage("exec").is_empty(),
        "a cache hit has no exec span"
    );
    assert_eq!(
        shape.stage("txn").len(),
        shape2.stage("txn").len(),
        "the replay carries the original run's txn spans"
    );

    gateway.shutdown();
}

/// One span in canonical form: (stage, name, parent chain of
/// (stage, name) pairs up to the root).
type CanonSpan = (String, String, Vec<(String, String)>);

/// Canonical shape of the deterministic part of a sweep's span tree,
/// sorted. Chunk spans are excluded — chunk boundaries are scheduling,
/// not semantics — as are timestamps and ids.
fn span_tree_shape(threads: usize, spec: &ModelSpec) -> Vec<CanonSpan> {
    let sink = SpanSink::new();
    let ctx = TraceCtx {
        trace_id: 7,
        parent_span: 0,
    };
    let sweep = Sweep::new(spec.to_app())
        .archs(the_archs())
        .with_recorder(2048)
        .with_causal(ctx, sink.clone());
    if threads <= 1 {
        sweep.run().unwrap();
    } else {
        sweep.run_parallel(threads).unwrap();
    }
    let spans = sink.take();
    let by_id: BTreeMap<u64, (String, String, u64)> = spans
        .iter()
        .map(|s| (s.span_id, (s.stage.clone(), s.name.clone(), s.parent_id)))
        .collect();
    let mut shape: Vec<_> = spans
        .iter()
        .filter(|s| ["role-detect", "candidate", "txn"].contains(&s.stage.as_str()))
        .map(|s| {
            let mut chain = Vec::new();
            let mut cursor = s.parent_id;
            while cursor != 0 {
                let Some((stage, name, parent)) = by_id.get(&cursor) else {
                    break;
                };
                chain.push((stage.clone(), name.clone()));
                cursor = *parent;
            }
            (s.stage.clone(), s.name.clone(), chain)
        })
        .collect();
    shape.sort();
    shape
}

#[test]
fn span_tree_shape_is_identical_serial_vs_eight_threads() {
    let spec = ModelSpec::random(23, &GenConfig::default());
    let serial = span_tree_shape(1, &spec);
    assert!(!serial.is_empty(), "the traced sweep must produce spans");
    assert_eq!(
        serial,
        span_tree_shape(8, &spec),
        "span-tree shape must not depend on parallelism"
    );
}

/// CI hook: when `SHIPTLM_CAUSAL_FILE` points at a Chrome JSON written by
/// the `causal_trace` example, validate it with the same testkit parser
/// the unit suites use — the exporter must not be the only judge of its
/// own output.
#[test]
fn validates_artifact_from_env() {
    if let Ok(path) = std::env::var("SHIPTLM_CAUSAL_FILE") {
        let text = std::fs::read_to_string(&path).unwrap();
        let shape = check_causal_trace(&text).unwrap_or_else(|e| panic!("{path}: {e}"));
        assert!(shape.spans.len() >= 8, "{path} looks truncated");
        shape.assert_nested("gateway", "job");
        shape.assert_nested("exec", "gateway");
        shape.assert_nested("candidate", "exec");
        shape.assert_nested("txn", "candidate");
    }
}
