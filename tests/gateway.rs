//! A two-bus "automotive gateway" scenario assembled by hand: fast PEs on a
//! PLB, a slow peripheral behind a PLB→OPB bridge, SHIP channels mapped on
//! both sides, a DMA engine moving bulk data, and a SW diagnostics task —
//! the kind of heterogeneous platform the paper's flow targets.

use std::sync::{Arc, Mutex};

use shiptlm::prelude::*;

const FAST_CH_BASE: u64 = 0x1000_0000; // adapter on the PLB
const SLOW_CH_BASE: u64 = 0x4000_0000; // adapter behind the bridge, on the OPB
const RAM_BASE: u64 = 0x0;

#[test]
fn bridged_two_bus_system_with_mapped_channels() {
    let sim = Simulation::new();
    let h = sim.handle();

    // --- OPB with the slow channel adapter -------------------------------
    let mut opb = CcatbBus::new(&h, BusConfig::opb("opb"));
    let slow_pending = map_channel(
        &h,
        "gw2sensor",
        SLOW_CH_BASE,
        WrapperConfig::default(),
        ("gateway", "sensor"),
    );
    opb.map_slave(
        SLOW_CH_BASE..SLOW_CH_BASE + ADAPTER_SIZE,
        slow_pending.adapter.clone(),
        true,
    );
    let opb = Arc::new(opb);

    // --- PLB with RAM, the fast channel adapter and the bridge ------------
    let mut plb = CcatbBus::new(&h, BusConfig::plb("plb"));
    plb.map_slave(
        RAM_BASE..0x1_0000,
        Arc::new(Memory::new("ram", 0x1_0000)),
        true,
    );
    let fast_pending = map_channel(
        &h,
        "ecu2gw",
        FAST_CH_BASE,
        WrapperConfig::default(),
        ("ecu", "gateway"),
    );
    plb.map_slave(
        FAST_CH_BASE..FAST_CH_BASE + ADAPTER_SIZE,
        fast_pending.adapter.clone(),
        true,
    );
    plb.map_slave(
        SLOW_CH_BASE..SLOW_CH_BASE + ADAPTER_SIZE,
        Arc::new(Bridge::new(
            "plb2opb",
            SimDur::ns(60),
            opb.clone(),
            MasterId(0),
        )),
        false,
    );
    let plb = Arc::new(plb);

    // --- PEs ---------------------------------------------------------------
    // ECU floods frames to the gateway over the fast channel.
    let ecu_port = fast_pending.bind(&plb.master_port(MasterId(0)));
    sim.spawn_thread("ecu", move |ctx| {
        for i in 0..20u32 {
            let frame: Vec<u8> = (0..48).map(|k| (k as u32 ^ i) as u8).collect();
            ecu_port.send(ctx, &(i, frame)).unwrap();
        }
    });

    // Gateway: receives frames on the PLB side, forwards a digest across the
    // bridge to the slow sensor channel, RPC-style.
    let gw_in = fast_pending.slave_port.clone();
    let gw_out = slow_pending.bind(&plb.master_port(MasterId(1)));
    let digests = Arc::new(Mutex::new(Vec::new()));
    {
        let digests = Arc::clone(&digests);
        sim.spawn_thread("gateway", move |ctx| {
            for _ in 0..20 {
                let (i, frame): (u32, Vec<u8>) = gw_in.recv(ctx).unwrap();
                let digest: u32 = frame.iter().map(|b| u32::from(*b)).sum::<u32>() ^ i;
                let ack: u32 = gw_out.request(ctx, &digest).unwrap();
                digests.lock().unwrap().push((digest, ack));
            }
        });
    }

    // Sensor node behind the OPB: acknowledges digests.
    let sensor_port = slow_pending.slave_port.clone();
    sim.spawn_thread("sensor", move |ctx| {
        for _ in 0..20 {
            let d: u32 = sensor_port.recv(ctx).unwrap();
            sensor_port.reply(ctx, &(d.wrapping_add(1))).unwrap();
        }
    });

    let r = sim.run();
    assert_eq!(r.reason, StopReason::Starved);
    let digests = digests.lock().unwrap();
    assert_eq!(digests.len(), 20);
    assert!(digests.iter().all(|(d, a)| *a == d.wrapping_add(1)));
    // Traffic crossed both buses.
    assert!(plb.stats().transactions > 40);
    assert!(opb.stats().transactions > 20);
    // The bridged path shows up as OPB master 0 (the bridge's identity).
    assert!(opb.stats().per_master.contains_key(&0));
}

#[test]
fn dma_offload_next_to_mapped_channels() {
    // A DMA engine and a mapped SHIP channel share one PLB: the CPU task
    // kicks a bulk copy while messaging a peer — no interference in content,
    // visible interference in timing.
    let sim = Simulation::new();
    let h = sim.handle();

    let mut plb = CcatbBus::new(&h, BusConfig::plb("plb"));
    let ram = Arc::new(Memory::new("ram", 0x1_0000));
    plb.map_slave(0..0x1_0000, ram.clone(), true);
    let pending = map_channel(&h, "c", FAST_CH_BASE, WrapperConfig::default(), ("p", "q"));
    plb.map_slave(
        FAST_CH_BASE..FAST_CH_BASE + ADAPTER_SIZE,
        pending.adapter.clone(),
        true,
    );
    // Late-bind the DMA's slave window (it masters the same bus).
    struct Slot(Mutex<Option<Arc<dyn OcpTarget>>>);
    impl OcpTarget for Slot {
        fn transact(
            &self,
            ctx: &mut ThreadCtx,
            m: MasterId,
            req: OcpRequest,
        ) -> Result<OcpResponse, OcpError> {
            let t = self.0.lock().unwrap().clone().expect("bound");
            t.transact(ctx, m, req)
        }
    }
    let slot = Arc::new(Slot(Mutex::new(None)));
    plb.map_slave(0x5000_0000..0x5000_1000, slot.clone(), true);
    let plb = Arc::new(plb);
    let dma = DmaEngine::new(&h, "dma", plb.master_port(MasterId(5)), 64);
    *slot.0.lock().unwrap() = Some(dma.clone() as Arc<dyn OcpTarget>);

    ram.poke(0x100, &vec![0xCD; 1024]);

    let cpu = plb.master_port(MasterId(0));
    let tx = pending.bind(&plb.master_port(MasterId(1)));
    let rx = pending.slave_port.clone();

    sim.spawn_thread("cpu", move |ctx| {
        // Kick the DMA.
        cpu.write(
            ctx,
            0x5000_0000 + dma_regs::SRC,
            0x100u64.to_le_bytes().to_vec(),
        )
        .unwrap();
        cpu.write(
            ctx,
            0x5000_0000 + dma_regs::DST,
            0x4000u64.to_le_bytes().to_vec(),
        )
        .unwrap();
        cpu.write_u32(ctx, 0x5000_0000 + dma_regs::LEN, 1024)
            .unwrap();
        cpu.write_u32(ctx, 0x5000_0000 + dma_regs::CTRL, DMA_CTRL_START)
            .unwrap();
        // Message the peer while the DMA runs.
        for i in 0..8u32 {
            tx.send(ctx, &i).unwrap();
        }
        // Wait for the DMA.
        loop {
            let s = cpu.read_u32(ctx, 0x5000_0000 + dma_regs::STATUS).unwrap();
            if s & DMA_STATUS_DONE != 0 {
                break;
            }
            ctx.wait_for(SimDur::ns(100));
        }
    });
    sim.spawn_thread("q", move |ctx| {
        for i in 0..8u32 {
            assert_eq!(rx.recv::<u32>(ctx).unwrap(), i);
        }
    });
    sim.run();
    assert_eq!(ram.peek(0x4000, 1024).unwrap(), vec![0xCD; 1024]);
    assert_eq!(dma.transfers(), 1);
}
