//! Concurrent-client soak of the simulation-as-a-service gateway.
//!
//! N clients × M jobs over both codecs against one gateway: results must
//! be byte-identical to in-process sweeps, the content-addressed cache
//! must collapse duplicate work exactly, admission control must shed load
//! with a retry hint, corrupted frames must come back classified (not as
//! a dead server), and a drain-based shutdown must finish every job it
//! accepted.

use std::io::Write;
use std::net::TcpStream;

use shiptlm::explore::prelude::*;
use shiptlm_gateway::prelude::*;
use shiptlm_testkit::model::{GenConfig, ModelSpec};
use shiptlm_testkit::prom::PromText;

const CLIENTS: usize = 4;
const ROUNDS: usize = 6;

fn unique_specs() -> Vec<ModelSpec> {
    let mut specs = vec![
        ModelSpec::random(101, &GenConfig::default()),
        ModelSpec::random(202, &GenConfig::default()),
        ModelSpec::random(303, &GenConfig::default()),
    ];
    // One hostile model name: it travels the wire, lands in the
    // Prometheus `model` label, and must round-trip through escaping.
    specs[2].name = "soak\"quoted\\name}\nwith newline".into();
    specs
}

fn the_archs() -> Vec<ArchSpec> {
    vec![
        ArchSpec::plb(),
        ArchSpec::opb().with_burst(16),
        ArchSpec::crossbar(),
    ]
}

fn request(id: u64, spec: &ModelSpec) -> JobRequest {
    JobRequest {
        id,
        spec: spec.clone(),
        archs: the_archs(),
        backend: BackendChoice::De,
        want_trace: true,
        trace: None,
        want_progress: false,
    }
}

/// The ground truth: the same sweep run in-process, no gateway involved.
fn direct_rows(spec: &ModelSpec) -> (Vec<ReportRow>, Vec<u8>) {
    let report = Sweep::new(spec.to_app())
        .archs(the_archs())
        .with_options(RunOptions::default())
        .run()
        .unwrap();
    let rows = report.rows().iter().map(ReportRow::from_metrics).collect();
    (rows, report.channel_latency_csv().into_bytes())
}

#[test]
fn soak_n_clients_m_jobs_with_exact_cache_accounting() {
    let gateway = Gateway::start(GatewayConfig {
        metrics_addr: Some("127.0.0.1:0".into()),
        queue_capacity: 32,
        executors: 2,
        threads_per_job: 2,
        ..GatewayConfig::default()
    })
    .unwrap();
    let addr = gateway.addr();

    let specs = unique_specs();
    let expected: Vec<(Vec<ReportRow>, Vec<u8>)> = specs.iter().map(direct_rows).collect();

    // client i speaks BIN when even, JSON when odd; every client runs
    // every unique job ROUNDS/len times.
    let outcomes: Vec<Vec<(usize, JobOutcome)>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|c| {
                let specs = &specs;
                s.spawn(move || {
                    let codec: &'static dyn WireCodec =
                        if c % 2 == 0 { &BIN } else { &JSON };
                    let mut client = GatewayClient::connect(addr, codec).unwrap();
                    (0..ROUNDS)
                        .map(|round| {
                            let which = round % specs.len();
                            let id = (c * ROUNDS + round) as u64 + 1;
                            let outcome = client
                                .run_job_with_retry(&request(id, &specs[which]), 50)
                                .unwrap();
                            (which, outcome)
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    // Every job completed with rows and trace byte-identical to the
    // in-process sweep.
    let mut fresh = 0;
    for (c, client_outcomes) in outcomes.iter().enumerate() {
        for (which, outcome) in client_outcomes {
            match outcome.status {
                JobStatus::Done { cached } => {
                    if !cached {
                        fresh += 1;
                    }
                }
                ref other => panic!("client {c} job on spec {which} ended {other:?}"),
            }
            assert_eq!(outcome.rows, expected[*which].0, "rows diverge (client {c})");
            assert_eq!(
                outcome.trace, expected[*which].1,
                "trace diverges (client {c})"
            );
        }
    }
    // Single-flight content addressing: each unique job computed once,
    // every other completion served from cache.
    let total = CLIENTS * ROUNDS;
    assert_eq!(fresh, specs.len(), "exactly one fresh run per unique job");
    let metrics = gateway.metrics();
    assert_eq!(metrics.cache_misses(), specs.len() as u64);
    assert_eq!(metrics.cache_hits(), (total - specs.len()) as u64);
    assert_eq!(gateway.cache_len(), specs.len());

    // Row payloads are byte-identical on the wire across every client:
    // a BIN `Row` frame is tag(1) + id(8) + canonical row encoding, and
    // everything past the echoed correlation id must match the canonical
    // encoding of the in-process sweep's rows exactly.
    for c in (0..CLIENTS).step_by(2) {
        for (which, outcome) in &outcomes[c] {
            let expected_bytes: Vec<Vec<u8>> = expected[*which]
                .0
                .iter()
                .map(shiptlm::ship::prelude::to_wire)
                .collect();
            let streamed: Vec<&[u8]> =
                outcome.raw_rows.iter().map(|f| &f[9..]).collect();
            assert_eq!(
                streamed, expected_bytes,
                "wire row bytes diverge from the direct sweep (client {c})"
            );
        }
    }

    // The /metrics endpoint parses as text 0.0.4 and carries the counts
    // above — including the hostile model name, escaped.
    let body = http_get(gateway.metrics_addr().unwrap(), "/metrics").unwrap();
    let parsed = PromText::parse(&body).unwrap();
    let hits = parsed
        .samples
        .iter()
        .find(|s| s.name == "shiptlm_gateway_cache_hits_total")
        .unwrap();
    assert_eq!(hits.value, (total - specs.len()) as f64);
    let nasty = parsed
        .sample("shiptlm_gateway_jobs_total", "model", &specs[2].name)
        .expect("hostile model name must round-trip through label escaping");
    assert_eq!(nasty.value, (total / specs.len()) as f64);
    let depth = parsed
        .samples
        .iter()
        .find(|s| s.name == "shiptlm_gateway_queue_depth")
        .unwrap();
    assert_eq!(depth.value, 0.0, "queue must be drained");

    gateway.shutdown();
}

#[test]
fn full_queue_rejects_with_retry_hint() {
    // capacity 0: the queue is always full, so admission is deterministic.
    let gateway = Gateway::start(GatewayConfig {
        queue_capacity: 0,
        retry_after_ms: 123,
        ..GatewayConfig::default()
    })
    .unwrap();
    let mut client = GatewayClient::connect(gateway.addr(), &BIN).unwrap();
    let req = request(1, &unique_specs()[0]);
    let outcome = client.run_job(&req).unwrap();
    assert_eq!(
        outcome.status,
        JobStatus::Rejected {
            retry_after_ms: 123
        }
    );
    assert!(outcome.rows.is_empty());
    // Bounded retry gives up with a protocol error, not a hang.
    let err = client.run_job_with_retry(&req, 3).unwrap_err();
    assert!(matches!(err, GatewayError::Protocol(_)), "got {err}");
    assert_eq!(gateway.metrics().rejections(), 4);
    gateway.shutdown();
}

#[test]
fn corrupted_frames_are_classified_and_the_connection_survives_decode_errors() {
    let gateway = Gateway::start(GatewayConfig::default()).unwrap();
    let mut client = GatewayClient::connect(gateway.addr(), &BIN).unwrap();

    // A well-framed but garbage body: classified as a decode failure on
    // THIS connection, which stays usable for a real job afterwards.
    {
        // Reach under the client: handshake by hand, then send a
        // well-framed garbage body.
        let mut raw = TcpStream::connect(gateway.addr()).unwrap();
        raw.write_all(b"SHTG\x01\x00").unwrap();
        let mut echoed = [0u8; 6];
        std::io::Read::read_exact(&mut raw, &mut echoed).unwrap();
        let garbage = b"\xde\xad\xbe\xef";
        raw.write_all(&(garbage.len() as u64).to_le_bytes()).unwrap();
        raw.write_all(garbage).unwrap();
        let reply = read_reply(&mut raw);
        assert!(
            matches!(reply, Reply::Error { id: 0, .. }),
            "garbage must classify as Error{{id:0}}, got {reply:?}"
        );

        // An oversized length prefix is a frame-layer violation: the
        // server answers once and drops the connection.
        raw.write_all(&u64::MAX.to_le_bytes()).unwrap();
        let reply = read_reply(&mut raw);
        assert!(matches!(reply, Reply::Error { id: 0, .. }), "got {reply:?}");
    }

    // The gateway as a whole is unaffected: a clean client still works.
    let outcome = client.run_job(&request(9, &unique_specs()[0])).unwrap();
    assert!(outcome.is_done());
    gateway.shutdown();
}

/// Reads one BIN-codec reply frame from a raw stream.
fn read_reply(stream: &mut TcpStream) -> Reply {
    let frame = read_frame(stream, 1 << 20).unwrap().expect("reply frame");
    BIN.decode_reply(&frame).unwrap()
}

/// Wire-compat regression: a protocol-version-1 peer (pre-extension
/// handshake and request body) must be served byte-identically to a
/// version-2 client, and must never receive a version-2-only reply tag —
/// even when extension fields are smuggled into its request body.
#[test]
fn version1_clients_are_served_byte_identically() {
    let gateway = Gateway::start(GatewayConfig::default()).unwrap();
    let spec = unique_specs()[0].clone();
    let req = request(1, &spec);

    // Ground truth: a current (version-2) client runs the job first.
    let mut client = GatewayClient::connect(gateway.addr(), &BIN).unwrap();
    let v2 = client.run_job(&req).unwrap();
    assert!(v2.is_done());

    // Hand-rolled version-1 peer: old 6-byte handshake, request body
    // ending at `want_trace` (the encoder's trailing extension for an
    // untraced request is exactly two flag bytes — strip them).
    let mut raw = TcpStream::connect(gateway.addr()).unwrap();
    raw.write_all(b"SHTG\x01\x00").unwrap();
    let mut echoed = [0u8; 6];
    std::io::Read::read_exact(&mut raw, &mut echoed).unwrap();
    assert_eq!(
        &echoed, b"SHTG\x01\x00",
        "server must echo the negotiated version, not its own maximum"
    );
    let full = BIN.encode_request(&req).unwrap();
    let v1_body = &full[..full.len() - 2];
    // Sanity: the stripped body is a decodable request with extension
    // defaults — i.e. exactly what a version-1 encoder produced.
    assert_eq!(BIN.decode_request(v1_body).unwrap(), req);
    write_frame(&mut raw, v1_body).unwrap();
    let v1_rows = collect_v1_rows(&mut raw, req.id, v2.rows.len());
    assert_eq!(
        v1_rows, v2.raw_rows,
        "version-1 peers must receive byte-identical Row frames"
    );

    // Same connection, but now the body *claims* tracing and progress:
    // the reader must strip the extension (a v1 peer cannot decode
    // Progress/Spans tags) and still serve the rows byte-identically.
    let mut smuggled = req.clone();
    smuggled.trace = Some(shiptlm::kernel::causal::TraceCtx::mint());
    smuggled.want_progress = true;
    let body = BIN.encode_request(&smuggled).unwrap();
    write_frame(&mut raw, &body).unwrap();
    let again = collect_v1_rows(&mut raw, req.id, v2.rows.len());
    assert_eq!(again, v2.raw_rows);

    gateway.shutdown();
}

/// Drains one job's replies off a raw version-1 connection, asserting no
/// version-2-only tags appear; returns the raw Row frame bodies.
fn collect_v1_rows(stream: &mut TcpStream, id: u64, expect_rows: usize) -> Vec<Vec<u8>> {
    let mut raw_rows = Vec::new();
    loop {
        let frame = read_frame(stream, 1 << 20).unwrap().expect("reply frame");
        let reply = BIN.decode_reply(&frame).unwrap();
        assert!(
            !reply.is_v2_only(),
            "version-1 connection received a v2-only reply: {reply:?}"
        );
        match reply {
            Reply::Accepted { .. } | Reply::TraceChunk { .. } => {}
            Reply::Row { .. } => raw_rows.push(frame),
            Reply::Done { id: done_id, rows, cached: _ } => {
                assert_eq!(done_id, id);
                assert_eq!(rows as usize, expect_rows);
                return raw_rows;
            }
            other => panic!("unexpected reply on v1 connection: {other:?}"),
        }
    }
}

#[test]
fn jobs_that_fail_or_panic_leave_the_gateway_usable() {
    let gateway = Gateway::start(GatewayConfig::default()).unwrap();
    let mut client = GatewayClient::connect(gateway.addr(), &BIN).unwrap();

    // A stream motif with no messages leaves its channel silent, so role
    // detection fails deterministically: the job reports Failed, the
    // failure is cached, and the connection and executors stay healthy.
    let quiet = ModelSpec {
        name: "quiet".into(),
        seed: 0,
        motifs: vec![shiptlm_testkit::model::Motif::Stream { sizes: vec![] }],
        app_checks: false,
    };
    let failed = client.run_job(&request(1, &quiet)).unwrap();
    let JobStatus::Failed { ref message } = failed.status else {
        panic!("silent model must fail, got {:?}", failed.status);
    };
    assert!(!message.is_empty());

    // Same failure again: now served from the cache.
    let again = client.run_job(&request(2, &quiet)).unwrap();
    assert_eq!(failed.status, again.status);
    assert_eq!(gateway.metrics().cache_hits(), 1);

    // And a healthy job right after still completes.
    let ok = client.run_job(&request(3, &unique_specs()[1])).unwrap();
    assert!(ok.is_done());
    gateway.shutdown();
}

#[test]
fn shutdown_drains_accepted_jobs() {
    let gateway = Gateway::start(GatewayConfig {
        executors: 1,
        ..GatewayConfig::default()
    })
    .unwrap();
    let addr = gateway.addr();
    let metrics = gateway.metrics();
    let spec = ModelSpec::random(707, &GenConfig::default());
    let expected = direct_rows(&spec).0;

    let client = std::thread::spawn(move || {
        let mut client = GatewayClient::connect(addr, &BIN).unwrap();
        client.run_job(&request(1, &spec)).unwrap()
    });

    // Wait until the job is admitted (queued or already executing), then
    // shut down while it is still in flight.
    let t0 = std::time::Instant::now();
    while metrics.queue_depth() == 0
        && metrics.jobs_inflight() == 0
        && metrics.cache_misses() == 0
        && t0.elapsed() < std::time::Duration::from_secs(5)
    {
        std::thread::yield_now();
    }
    gateway.shutdown();

    // The accepted job was drained: the client saw full results despite
    // the shutdown racing its execution.
    let outcome = client.join().unwrap();
    assert!(outcome.is_done(), "drained job ended {:?}", outcome.status);
    assert_eq!(outcome.rows, expected);
}
