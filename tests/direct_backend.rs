//! Direct-execution backend: equivalence with the DE kernel on qualifying
//! models, and fallback coverage — every disqualifying construct must push
//! `Backend::Auto` onto the DE path with a log-able reason, and the fallback
//! run must be indistinguishable from an explicit DE run.

use shiptlm::prelude::*;

fn de() -> RunOptions {
    RunOptions::default()
}

fn direct() -> RunOptions {
    RunOptions::default().with_backend(Backend::Direct)
}

fn auto() -> RunOptions {
    RunOptions::default().with_backend(Backend::Auto)
}

type NamedApp = (&'static str, fn() -> AppSpec);

#[test]
fn direct_matches_de_on_qualifying_models() {
    let apps: Vec<NamedApp> = vec![
        ("pipeline", || workload::pipeline(5, 12, 128, SimDur::ZERO)),
        ("streams", || workload::parallel_streams(3, 10, 96)),
        ("rpc", || workload::rpc(2, 8, 64, SimDur::ZERO)),
        ("hotspot", || workload::hotspot(3, 4, 64)),
    ];
    for (name, app) in apps {
        let base = run_component_assembly_with(&app(), &de()).expect(name);
        let fast = run_component_assembly_with(&app(), &direct()).expect(name);
        assert_eq!(fast.backend.requested, Backend::Direct, "{name}");
        assert_eq!(fast.backend.used, Backend::Direct, "{name}");
        assert_eq!(fast.backend.fallback, None, "{name}");
        assert_eq!(fast.output.reason, StopReason::Starved, "{name}");
        assert!(fast.output.diagnosis.is_none(), "{name}");
        assert_eq!(fast.output.delta_cycles, 0, "{name}");
        assert_eq!(fast.roles, base.roles, "{name}: detected roles differ");
        base.output
            .log
            .content_equivalent(&fast.output.log)
            .unwrap_or_else(|e| panic!("{name}: direct diverged from DE: {e}"));
    }
}

#[test]
fn auto_uses_direct_when_the_model_qualifies() {
    let app = workload::pipeline(4, 8, 64, SimDur::ZERO);
    let run = run_component_assembly_with(&app, &auto()).expect("auto run");
    assert_eq!(run.backend.requested, Backend::Auto);
    assert_eq!(run.backend.used, Backend::Direct);
    assert_eq!(run.backend.fallback, None);
}

#[test]
fn auto_falls_back_on_timed_wait() {
    let app = || workload::pipeline(4, 8, 64, SimDur::ns(10));
    let run = run_component_assembly_with(&app(), &auto()).expect("auto run");
    assert_eq!(run.backend.requested, Backend::Auto);
    assert_eq!(run.backend.used, Backend::De);
    let reason = run.backend.fallback.expect("fallback reason");
    assert!(
        reason.contains("timed wait"),
        "reason should name the construct: {reason}"
    );

    // The fallback run is indistinguishable from an explicit DE run: the
    // DE kernel is deterministic, so the record sequence matches exactly.
    let base = run_component_assembly_with(&app(), &de()).expect("de run");
    assert_eq!(run.output.log.to_vec(), base.output.log.to_vec());
    assert_eq!(run.output.sim_time, base.output.sim_time);
    assert_eq!(run.output.delta_cycles, base.output.delta_cycles);
    assert_eq!(run.roles, base.roles);
}

#[test]
fn auto_falls_back_on_signal_update() {
    let mut app = AppSpec::new("signals");
    app.add_pe("writer", || {
        Box::new(|ctx, ports: Vec<ShipPort>| {
            let sig = ctx.sim().signal("level", 0u32);
            sig.write(1);
            ports[0].send(ctx, &7u32).unwrap();
        })
    });
    app.add_pe("reader", || {
        Box::new(|ctx, ports: Vec<ShipPort>| {
            let _: u32 = ports[0].recv(ctx).unwrap();
        })
    });
    app.connect("link", "writer", "reader");

    let run = run_component_assembly_with(&app, &auto()).expect("auto run");
    assert_eq!(run.backend.used, Backend::De);
    let reason = run.backend.fallback.expect("fallback reason");
    assert!(
        reason.contains("signal"),
        "reason should name the construct: {reason}"
    );
    assert!(reason.contains("writer"), "reason should name the process");
}

#[test]
fn auto_falls_back_on_notify_after() {
    let mut app = AppSpec::new("timers");
    app.add_pe("timer", || {
        Box::new(|ctx, ports: Vec<ShipPort>| {
            let ev = ctx.sim().event("tick");
            ev.notify_after(SimDur::ns(5));
            ports[0].send(ctx, &1u8).unwrap();
        })
    });
    app.add_pe("sink", || {
        Box::new(|ctx, ports: Vec<ShipPort>| {
            let _: u8 = ports[0].recv(ctx).unwrap();
        })
    });
    app.connect("t", "timer", "sink");

    let run = run_component_assembly_with(&app, &auto()).expect("auto run");
    assert_eq!(run.backend.used, Backend::De);
    let reason = run.backend.fallback.expect("fallback reason");
    assert!(
        reason.contains("notify_after"),
        "reason should name the construct: {reason}"
    );
}

#[test]
fn forced_direct_fails_loudly_on_disqualified_models() {
    let app = workload::pipeline(4, 8, 64, SimDur::ns(10));
    let err = run_component_assembly_with(&app, &direct()).expect_err("must disqualify");
    let MapError::Backend { reason } = &err else {
        panic!("expected MapError::Backend, got {err:?}");
    };
    assert!(reason.contains("timed wait"), "bad reason: {reason}");
    let msg = err.to_string();
    assert!(
        msg.contains("disqualified from direct execution"),
        "bad message: {msg}"
    );
}

#[test]
fn direct_reports_ship_timeouts_like_de() {
    // A sink that never drains: the source's send must time out with the
    // same error shape on both backends.
    let stuck = |opts: &RunOptions| {
        let mut app = AppSpec::new("stuck");
        app.add_pe("source", || {
            Box::new(|ctx, ports: Vec<ShipPort>| {
                let mut sent = 0u32;
                loop {
                    if ports[0].send(ctx, &sent).is_err() {
                        break;
                    }
                    sent += 1;
                }
                assert!(sent >= 16, "capacity worth of sends should succeed");
            })
        });
        app.add_pe("sink", || {
            Box::new(|ctx, ports: Vec<ShipPort>| {
                // Observe the channel as slave, then stop draining.
                let _: u32 = ports[0].recv(ctx).unwrap();
            })
        });
        app.connect("full", "source", "sink");
        run_component_assembly_with(&app, opts).expect("run completes via timeout")
    };
    let base = stuck(&de().with_ship_timeout(SimDur::us(1)));
    let fast = stuck(&direct().with_ship_timeout(SimDur::us(1)));
    assert_eq!(fast.backend.used, Backend::Direct);
    base.output
        .log
        .content_equivalent(&fast.output.log)
        .expect("timeout paths record the same successful operations");
}

#[test]
fn direct_deadlock_is_diagnosed() {
    // Two PEs each waiting to receive first: a rendezvous deadlock. Without
    // a ship timeout the direct core must detect the stall and produce a
    // diagnosis naming both processes instead of hanging.
    let mut app = AppSpec::new("deadlock");
    for (me, _other) in [("left", "right"), ("right", "left")] {
        app.add_pe(me, || {
            Box::new(move |ctx, ports: Vec<ShipPort>| {
                let got: Result<u32, _> = ports[0].recv(ctx);
                // Unblocked only if the peer sends, which it never does.
                let _ = got;
            })
        });
    }
    app.connect("lr", "left", "right");

    let err = run_component_assembly_with(&app, &direct());
    // Both ends only ever recv → roles cannot be derived; what matters is
    // that we got *here* (the run terminated) rather than hanging, and the
    // role error mirrors the DE backend's.
    let de_err = run_component_assembly_with(&app, &de());
    match (err, de_err) {
        (Err(a), Err(b)) => assert_eq!(a, b, "direct and DE disagree on the failure"),
        (a, b) => panic!("expected matching role errors, got {a:?} / {b:?}"),
    }
}

#[test]
fn sweep_report_is_identical_across_backends() {
    // Sweep::new defaults to Backend::Auto; the report it produces must be
    // byte-identical to one computed with the DE backend forced, because
    // mapped rows are DE either way and the untimed run only contributes
    // roles (plus the optional baseline row, which reports no timing).
    let app = || workload::parallel_streams(2, 6, 64);
    let archs = || vec![ArchSpec::plb(), ArchSpec::crossbar()];
    let auto_report = Sweep::new(app()).archs(archs()).run().expect("auto sweep");
    let de_report = Sweep::new(app())
        .archs(archs())
        .with_options(RunOptions::default())
        .run()
        .expect("de sweep");
    assert_eq!(auto_report.to_string(), de_report.to_string());
}
