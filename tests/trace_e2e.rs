//! End-to-end checks of the transaction-level trace recorder: a quickstart
//! topology run with recording on must export well-formed Chrome
//! `trace_event` JSON covering every instrumented layer, event times must be
//! consistent, and parallel sweeps must trace identically to serial ones.
//!
//! JSON parsing and the trace shape assertions live in `shiptlm-testkit`
//! ([`shiptlm_testkit::json`] / [`shiptlm_testkit::asserts`]), shared with
//! the conformance suites.

use shiptlm::prelude::*;
use shiptlm_testkit::prelude::{
    assert_chrome_export, assert_jsonl_export, assert_spans_consistent, check_chrome_trace,
};

// ---------------------------------------------------------------------------
// The quickstart producer/consumer topology.
// ---------------------------------------------------------------------------

fn quickstart_app(messages: u32) -> AppSpec {
    let mut app = AppSpec::new("quickstart");
    app.add_pe("producer", move || {
        Box::new(move |ctx, ports: Vec<ShipPort>| {
            for i in 0..messages {
                let payload: Vec<u8> = (0..64).map(|b| (b as u32 ^ i) as u8).collect();
                ports[0].send(ctx, &(i, payload)).unwrap();
            }
        })
    });
    app.add_pe("consumer", move || {
        Box::new(move |ctx, ports: Vec<ShipPort>| {
            for i in 0..messages {
                let (n, payload): (u32, Vec<u8>) = ports[0].recv(ctx).unwrap();
                assert_eq!(n, i);
                assert_eq!(payload.len(), 64);
            }
        })
    });
    app.connect("stream", "producer", "consumer");
    app
}

#[test]
fn recorder_covers_ship_bus_and_ocp_layers() {
    let run = DesignFlow::new(quickstart_app(16), ArchSpec::plb())
        .with_pin_level()
        .with_recorder(65_536)
        .run()
        .unwrap();

    let trace = run.ccatb.output.txn.as_ref().expect("recorder enabled");
    assert!(!trace.is_empty());
    assert_eq!(trace.dropped(), 0);
    let levels: Vec<&str> = trace
        .stats()
        .keys()
        .map(|(level, _)| level.as_str())
        .collect();
    assert!(levels.contains(&"ship"), "ship layer missing: {levels:?}");
    assert!(levels.contains(&"bus"), "bus layer missing: {levels:?}");
    assert!(levels.contains(&"ocp"), "ocp layer missing: {levels:?}");

    // The untimed reference records SHIP calls only; the pin-accurate run
    // crosses all three layers too.
    let ca = run.component_assembly.output.txn.as_ref().unwrap();
    assert!(ca.resource_stats(TxnLevel::Ship, "stream").is_some());
    // The pin level initiates through pin accessors, so its OCP resource is
    // the accessor, not the bus — any OCP-level stream will do.
    let pin = run
        .pin_accurate
        .as_ref()
        .unwrap()
        .output
        .txn
        .as_ref()
        .unwrap();
    assert!(pin.stats().keys().any(|(level, _)| *level == TxnLevel::Ocp));

    // Per-channel aggregates line up with the event stream.
    let ship = trace.resource_stats(TxnLevel::Ship, "stream").unwrap();
    assert_eq!(ship.count, 32); // 16 sends + 16 recvs
    assert_eq!(ship.errors, 0);
    assert!(ship.latency_ns.min().unwrap() > 0.0);
}

#[test]
fn trace_events_nest_and_are_monotone_per_process() {
    let run = DesignFlow::new(quickstart_app(16), ArchSpec::plb())
        .with_recorder(65_536)
        .run()
        .unwrap();
    assert_spans_consistent(run.ccatb.output.txn.as_ref().unwrap());
}

#[test]
fn chrome_export_is_valid_json_with_expected_shape() {
    let run = DesignFlow::new(quickstart_app(8), ArchSpec::plb())
        .with_recorder(65_536)
        .run()
        .unwrap();
    let trace = run.ccatb.output.txn.as_ref().unwrap();

    let shape = assert_chrome_export(trace);
    assert_eq!(shape.metadata, 2); // producer + consumer
    assert!(shape.categories.iter().any(|c| c == "ship"));

    // The JSONL export carries the same number of events, one per line,
    // each a valid JSON object with the documented fields.
    assert_jsonl_export(trace);
}

#[test]
fn partitioned_run_records_driver_level_events() {
    let app = quickstart_app(8);
    let ca = run_component_assembly(&app).unwrap();
    let sw = run_partitioned_with(
        &app,
        &ca.roles,
        &ArchSpec::plb(),
        &Partition::software(["producer"]),
        &RunOptions::with_recorder(65_536),
    )
    .unwrap();

    let trace = sw.mapped.output.txn.as_ref().expect("recorder enabled");
    let levels: Vec<&str> = trace
        .stats()
        .keys()
        .map(|(level, _)| level.as_str())
        .collect();
    assert!(
        levels.contains(&"driver"),
        "SW driver layer missing: {levels:?}"
    );
    let drv_ops: Vec<&str> = trace
        .events()
        .iter()
        .filter(|e| e.level == TxnLevel::Driver)
        .map(|e| e.op)
        .collect();
    assert!(
        drv_ops.contains(&"drv.send"),
        "no doorbell sends: {drv_ops:?}"
    );
}

#[test]
fn parallel_sweep_traces_are_identical_to_serial() {
    let archs = [ArchSpec::plb(), ArchSpec::opb(), ArchSpec::crossbar()];
    let run = |threads: usize| {
        Sweep::new(quickstart_app(8))
            .archs(archs.clone())
            .with_recorder(65_536)
            .run_parallel(threads)
            .unwrap()
    };
    let serial = run(1);
    let parallel = run(2);
    assert_eq!(serial.rows().len(), parallel.rows().len());
    for (s, p) in serial.rows().iter().zip(parallel.rows()) {
        assert_eq!(s.label, p.label);
        let (st, pt) = (s.txn.as_ref().unwrap(), p.txn.as_ref().unwrap());
        check_chrome_trace(&st.to_chrome_json()).expect("serial trace must be valid");
        assert_eq!(
            st.to_chrome_json(),
            pt.to_chrome_json(),
            "trace of {} differs between serial and 2-thread sweep",
            s.label
        );
        assert_eq!(st.to_jsonl(), pt.to_jsonl());
    }
    // Sweep rows expose per-channel latency regardless of the recorder.
    for row in serial.rows() {
        let lat = &row.channel_latency["stream"];
        assert!(lat.count() > 0);
        assert!(lat.min().unwrap() <= lat.max().unwrap());
    }
    let csv = serial.channel_latency_csv();
    assert!(csv.starts_with("config,channel,calls,min_ns,mean_ns,max_ns\n"));
    assert!(csv.contains("stream"));
}
