//! End-to-end checks of the transaction-level trace recorder: a quickstart
//! topology run with recording on must export well-formed Chrome
//! `trace_event` JSON covering every instrumented layer, event times must be
//! consistent, and parallel sweeps must trace identically to serial ones.

use std::collections::BTreeMap;

use shiptlm::prelude::*;

// ---------------------------------------------------------------------------
// Minimal recursive-descent JSON parser (no external crates): enough to
// verify that exported traces are valid JSON and to inspect their structure.
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(BTreeMap<String, Json>),
}

impl Json {
    fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }
}

struct Parser<'a> {
    s: &'a [u8],
    i: usize,
}

impl<'a> Parser<'a> {
    fn parse(text: &'a str) -> Result<Json, String> {
        let mut p = Parser {
            s: text.as_bytes(),
            i: 0,
        };
        let v = p.value()?;
        p.skip_ws();
        if p.i != p.s.len() {
            return Err(format!("trailing bytes at offset {}", p.i));
        }
        Ok(v)
    }

    fn skip_ws(&mut self) {
        while self.i < self.s.len() && self.s[self.i].is_ascii_whitespace() {
            self.i += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.s.get(self.i).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.i += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at offset {}", b as char, self.i))
        }
    }

    fn lit(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.s[self.i..].starts_with(word.as_bytes()) {
            self.i += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at offset {}", self.i))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.lit("true", Json::Bool(true)),
            Some(b'f') => self.lit("false", Json::Bool(false)),
            Some(b'n') => self.lit("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!("unexpected {other:?} at offset {}", self.i)),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.eat(b'{')?;
        let mut m = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(Json::Obj(m));
        }
        loop {
            self.skip_ws();
            let k = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            m.insert(k, self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(Json::Obj(m));
                }
                other => return Err(format!("bad object separator {other:?}")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.eat(b'[')?;
        let mut v = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(Json::Arr(v));
        }
        loop {
            v.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(Json::Arr(v));
                }
                other => return Err(format!("bad array separator {other:?}")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.i += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.i += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = std::str::from_utf8(&self.s[self.i + 1..self.i + 5])
                                .map_err(|e| e.to_string())?;
                            let cp = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                            out.push(char::from_u32(cp).ok_or("bad \\u escape")?);
                            self.i += 4;
                        }
                        other => return Err(format!("bad escape {other:?}")),
                    }
                    self.i += 1;
                }
                Some(_) => {
                    let start = self.i;
                    while self
                        .peek()
                        .is_some_and(|c| c != b'"' && c != b'\\')
                    {
                        self.i += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.s[start..self.i]).map_err(|e| e.to_string())?,
                    );
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.i;
        if self.peek() == Some(b'-') {
            self.i += 1;
        }
        while self
            .peek()
            .is_some_and(|c| c.is_ascii_digit() || c == b'.' || c == b'e' || c == b'E' || c == b'+' || c == b'-')
        {
            self.i += 1;
        }
        std::str::from_utf8(&self.s[start..self.i])
            .map_err(|e| e.to_string())?
            .parse::<f64>()
            .map(Json::Num)
            .map_err(|e| format!("bad number at {start}: {e}"))
    }
}

// ---------------------------------------------------------------------------
// The quickstart producer/consumer topology.
// ---------------------------------------------------------------------------

fn quickstart_app(messages: u32) -> AppSpec {
    let mut app = AppSpec::new("quickstart");
    app.add_pe("producer", move || {
        Box::new(move |ctx, ports: Vec<ShipPort>| {
            for i in 0..messages {
                let payload: Vec<u8> = (0..64).map(|b| (b as u32 ^ i) as u8).collect();
                ports[0].send(ctx, &(i, payload)).unwrap();
            }
        })
    });
    app.add_pe("consumer", move || {
        Box::new(move |ctx, ports: Vec<ShipPort>| {
            for i in 0..messages {
                let (n, payload): (u32, Vec<u8>) = ports[0].recv(ctx).unwrap();
                assert_eq!(n, i);
                assert_eq!(payload.len(), 64);
            }
        })
    });
    app.connect("stream", "producer", "consumer");
    app
}

#[test]
fn recorder_covers_ship_bus_and_ocp_layers() {
    let run = DesignFlow::new(quickstart_app(16), ArchSpec::plb())
        .with_pin_level()
        .with_recorder(65_536)
        .run()
        .unwrap();

    let trace = run.ccatb.output.txn.as_ref().expect("recorder enabled");
    assert!(!trace.is_empty());
    assert_eq!(trace.dropped(), 0);
    let levels: Vec<&str> = trace
        .stats()
        .keys()
        .map(|(level, _)| level.as_str())
        .collect();
    assert!(levels.contains(&"ship"), "ship layer missing: {levels:?}");
    assert!(levels.contains(&"bus"), "bus layer missing: {levels:?}");
    assert!(levels.contains(&"ocp"), "ocp layer missing: {levels:?}");

    // The untimed reference records SHIP calls only; the pin-accurate run
    // crosses all three layers too.
    let ca = run.component_assembly.output.txn.as_ref().unwrap();
    assert!(ca.resource_stats(TxnLevel::Ship, "stream").is_some());
    // The pin level initiates through pin accessors, so its OCP resource is
    // the accessor, not the bus — any OCP-level stream will do.
    let pin = run.pin_accurate.as_ref().unwrap().output.txn.as_ref().unwrap();
    assert!(pin.stats().keys().any(|(level, _)| *level == TxnLevel::Ocp));

    // Per-channel aggregates line up with the event stream.
    let ship = trace.resource_stats(TxnLevel::Ship, "stream").unwrap();
    assert_eq!(ship.count, 32); // 16 sends + 16 recvs
    assert_eq!(ship.errors, 0);
    assert!(ship.latency_ns.min().unwrap() > 0.0);
}

#[test]
fn trace_events_nest_and_are_monotone_per_process() {
    let run = DesignFlow::new(quickstart_app(16), ArchSpec::plb())
        .with_recorder(65_536)
        .run()
        .unwrap();
    let trace = run.ccatb.output.txn.as_ref().unwrap();

    let mut last_end: BTreeMap<&str, _> = BTreeMap::new();
    for ev in trace.events() {
        assert!(ev.start <= ev.end, "span begins after it ends: {ev:?}");
        // Events are recorded at completion, so per-process completion
        // times must be non-decreasing.
        if let Some(prev) = last_end.insert(&*ev.process, ev.end) {
            assert!(prev <= ev.end, "process {} went backwards", ev.process);
        }
    }
}

#[test]
fn chrome_export_is_valid_json_with_expected_shape() {
    let run = DesignFlow::new(quickstart_app(8), ArchSpec::plb())
        .with_recorder(65_536)
        .run()
        .unwrap();
    let trace = run.ccatb.output.txn.as_ref().unwrap();

    let doc = Parser::parse(&trace.to_chrome_json()).expect("chrome trace must parse");
    assert_eq!(
        doc.get("displayTimeUnit").and_then(Json::as_str),
        Some("ns")
    );
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_arr)
        .expect("traceEvents array");
    assert!(!events.is_empty());

    let mut metadata = 0usize;
    let mut complete = 0usize;
    for ev in events {
        match ev.get("ph").and_then(Json::as_str) {
            Some("M") => {
                metadata += 1;
                assert_eq!(ev.get("name").and_then(Json::as_str), Some("thread_name"));
            }
            Some("X") => {
                complete += 1;
                assert!(ev.get("ts").and_then(Json::as_num).unwrap() >= 0.0);
                assert!(ev.get("dur").and_then(Json::as_num).unwrap() >= 0.0);
                let cat = ev.get("cat").and_then(Json::as_str).unwrap();
                assert!(["ship", "bus", "ocp", "driver"].contains(&cat));
                let args = ev.get("args").unwrap();
                assert!(args.get("resource").and_then(Json::as_str).is_some());
                assert!(args.get("bytes").and_then(Json::as_num).is_some());
            }
            other => panic!("unexpected event phase {other:?}"),
        }
    }
    assert_eq!(metadata, 2); // producer + consumer
    assert_eq!(complete, trace.events().len());

    // The JSONL export carries the same number of events, one per line.
    let jsonl = trace.to_jsonl();
    let lines: Vec<&str> = jsonl.lines().collect();
    assert_eq!(lines.len(), trace.events().len());
    for line in lines {
        Parser::parse(line).expect("each JSONL line must parse");
    }
}

#[test]
fn partitioned_run_records_driver_level_events() {
    let app = quickstart_app(8);
    let ca = run_component_assembly(&app).unwrap();
    let sw = run_partitioned_with(
        &app,
        &ca.roles,
        &ArchSpec::plb(),
        &Partition::software(["producer"]),
        &RunOptions::with_recorder(65_536),
    )
    .unwrap();

    let trace = sw.mapped.output.txn.as_ref().expect("recorder enabled");
    let levels: Vec<&str> = trace
        .stats()
        .keys()
        .map(|(level, _)| level.as_str())
        .collect();
    assert!(
        levels.contains(&"driver"),
        "SW driver layer missing: {levels:?}"
    );
    let drv_ops: Vec<&str> = trace
        .events()
        .iter()
        .filter(|e| e.level == TxnLevel::Driver)
        .map(|e| e.op)
        .collect();
    assert!(drv_ops.contains(&"drv.send"), "no doorbell sends: {drv_ops:?}");
}

#[test]
fn parallel_sweep_traces_are_identical_to_serial() {
    let archs = [ArchSpec::plb(), ArchSpec::opb(), ArchSpec::crossbar()];
    let run = |threads: usize| {
        Sweep::new(quickstart_app(8))
            .archs(archs.clone())
            .with_recorder(65_536)
            .run_parallel(threads)
            .unwrap()
    };
    let serial = run(1);
    let parallel = run(2);
    assert_eq!(serial.rows().len(), parallel.rows().len());
    for (s, p) in serial.rows().iter().zip(parallel.rows()) {
        assert_eq!(s.label, p.label);
        let (st, pt) = (s.txn.as_ref().unwrap(), p.txn.as_ref().unwrap());
        assert_eq!(
            st.to_chrome_json(),
            pt.to_chrome_json(),
            "trace of {} differs between serial and 2-thread sweep",
            s.label
        );
        assert_eq!(st.to_jsonl(), pt.to_jsonl());
    }
    // Sweep rows expose per-channel latency regardless of the recorder.
    for row in serial.rows() {
        let lat = &row.channel_latency["stream"];
        assert!(lat.count() > 0);
        assert!(lat.min().unwrap() <= lat.max().unwrap());
    }
    let csv = serial.channel_latency_csv();
    assert!(csv.starts_with("config,channel,calls,min_ns,mean_ns,max_ns\n"));
    assert!(csv.contains("stream"));
}
