//! End-to-end integration across the whole stack: one application taken
//! through every artifact the flow produces — untimed model, exploration
//! sweep, CCATB mapping, pin-accurate prototype and HW/SW partitioning —
//! with functional results checked at each step.

use std::sync::{Arc, Mutex};

use shiptlm::prelude::*;

/// A small "sensor fusion" app: two sensor front-ends feed a fusion PE via
/// a relay, and the fusion core offloads a filter to an accelerator by RPC.
fn sensor_fusion(samples: u32) -> (AppSpec, Arc<Mutex<Vec<i64>>>) {
    let results = Arc::new(Mutex::new(Vec::new()));
    let mut app = AppSpec::new("sensor_fusion");
    for s in 0..2u32 {
        app.add_pe(&format!("sensor{s}"), move || {
            Box::new(move |ctx, ports: Vec<ShipPort>| {
                for i in 0..samples {
                    let reading = i64::from(i) * (s as i64 + 1) - 5;
                    ports[0].send(ctx, &reading).unwrap();
                    ctx.wait_for(SimDur::us(1));
                }
            })
        });
    }
    {
        let results = Arc::clone(&results);
        app.add_pe("fusion", move || {
            let results = Arc::clone(&results);
            Box::new(move |ctx, ports: Vec<ShipPort>| {
                // Ports: [sensor0 in, sensor1 in, accel rpc].
                for _ in 0..samples {
                    let a: i64 = ports[0].recv(ctx).unwrap();
                    let b: i64 = ports[1].recv(ctx).unwrap();
                    let filtered: i64 = ports[2].request(ctx, &(a + b)).unwrap();
                    results.lock().unwrap().push(filtered);
                }
            })
        });
    }
    app.add_pe("accel", move || {
        Box::new(move |ctx, ports: Vec<ShipPort>| {
            for _ in 0..samples {
                let x: i64 = ports[0].recv(ctx).unwrap();
                ports[0].reply(ctx, &(x.saturating_mul(3) / 2)).unwrap();
            }
        })
    });
    app.connect("s0", "sensor0", "fusion");
    app.connect("s1", "sensor1", "fusion");
    app.connect("acc", "fusion", "accel");
    (app, results)
}

fn expected(samples: u32) -> Vec<i64> {
    (0..samples)
        .map(|i| {
            let a = i64::from(i) - 5;
            let b = i64::from(i) * 2 - 5;
            (a + b).saturating_mul(3) / 2
        })
        .collect()
}

#[test]
fn sensor_fusion_through_the_whole_flow() {
    let samples = 12;

    // Component assembly: roles detected, results correct.
    let (app, results) = sensor_fusion(samples);
    let ca = run_component_assembly(&app).unwrap();
    assert_eq!(*results.lock().unwrap(), expected(samples));
    assert_eq!(ca.roles.master_of["s0"], "sensor0");
    assert_eq!(ca.roles.master_of["s1"], "sensor1");
    assert_eq!(ca.roles.master_of["acc"], "fusion");

    // CCATB mapping on three architectures; results correct each time.
    for arch in [ArchSpec::plb(), ArchSpec::opb(), ArchSpec::crossbar()] {
        let (app, results) = sensor_fusion(samples);
        let mapped = run_mapped(&app, &ca.roles, &arch).unwrap();
        assert_eq!(
            *results.lock().unwrap(),
            expected(samples),
            "{}",
            arch.label()
        );
        ca.output
            .log
            .content_equivalent(&mapped.output.log)
            .unwrap();
    }

    // Pin-accurate prototype.
    let (app, results) = sensor_fusion(samples);
    let pin = run_pin_accurate(&app, &ca.roles, &ArchSpec::plb()).unwrap();
    assert_eq!(*results.lock().unwrap(), expected(samples));
    ca.output.log.content_equivalent(&pin.output.log).unwrap();

    // HW/SW partition: fusion becomes embedded software.
    let (app, results) = sensor_fusion(samples);
    let sw = run_partitioned(
        &app,
        &ca.roles,
        &ArchSpec::plb(),
        &Partition::software(["fusion"]),
    )
    .unwrap();
    assert_eq!(*results.lock().unwrap(), expected(samples));
    ca.output
        .log
        .content_equivalent(&sw.mapped.output.log)
        .unwrap();
    assert!(sw.rtos.ctx_switches > 0);
}

#[test]
fn sweep_over_sensor_fusion_is_consistent() {
    let (app, _) = sensor_fusion(8);
    let report = Sweep::new(app)
        .with_untimed_baseline()
        .arch(ArchSpec::plb())
        .arch(ArchSpec::opb())
        .arch(ArchSpec::crossbar())
        .run()
        .unwrap();
    // Same delivered messages everywhere; slower bus, more time.
    let msgs: Vec<u64> = report.rows().iter().map(|r| r.messages).collect();
    assert!(msgs.windows(2).all(|w| w[0] == w[1]));
    let t = |label: &str| {
        report
            .rows()
            .iter()
            .find(|r| r.label.starts_with(label))
            .unwrap()
            .sim_time
    };
    assert!(t("opb") > t("plb"));
}

#[test]
fn deterministic_repeat_runs() {
    // The whole stack must be deterministic: two identical runs produce
    // byte-identical logs and identical end times.
    let run = || {
        let (app, _) = sensor_fusion(6);
        let ca = run_component_assembly(&app).unwrap();
        let mapped = run_mapped(&app, &ca.roles, &ArchSpec::plb()).unwrap();
        (
            mapped.output.sim_time,
            mapped.output.log.to_vec(),
            mapped.bus.transactions,
        )
    };
    let (t1, l1, n1) = run();
    let (t2, l2, n2) = run();
    assert_eq!(t1, t2);
    assert_eq!(n1, n2);
    assert_eq!(l1, l2);
}

#[test]
fn vcd_trace_of_a_pin_accurate_run() {
    // Pin-level runs can be waveform-traced; the VCD must contain the OCP
    // signal group with real transitions.
    let dir = std::env::temp_dir().join("shiptlm_e2e_vcd");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("ocp.vcd");

    let sim = Simulation::new();
    let h = sim.handle();
    sim.trace_vcd(&path).unwrap();
    let clk = sim.clock("clk", SimDur::ns(10));
    let pins = OcpPins::new(&h, "ocp");
    pins.trace("ocp");
    clk.signal().trace("clk");
    let mem = std::sync::Arc::new(Memory::new("ram", 1024));
    let master = PinOcpMaster::new(&h, "m", pins.clone(), &clk);
    PinOcpSlave::spawn(&h, "s", pins, &clk, mem, 0, MasterId(0));
    let port = OcpMasterPort::bind(MasterId(0), master);
    sim.spawn_thread("pe", move |ctx| {
        port.write(ctx, 0, vec![0xAB; 16]).unwrap();
        let _ = port.read(ctx, 0, 16).unwrap();
        ctx.stop();
    });
    sim.run();
    sim.flush_trace().unwrap();

    let text = std::fs::read_to_string(&path).unwrap();
    assert!(text.contains("$var wire 8 ! ocp.MCmd"));
    assert!(text.contains("ocp.SCmdAccept"));
    // At least a few value-change timestamps.
    assert!(text.matches('#').count() > 10);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn design_flow_on_a_worker_pool_matches_the_serial_flow() {
    // `DesignFlow::run_on` overlaps the CCATB and pin-accurate levels on the
    // shared worker pool; the runs themselves must be indistinguishable from
    // the serial `run()` path.
    let app = workload::pipeline(3, 8, 128, SimDur::ZERO);
    let flow = DesignFlow::new(app, ArchSpec::plb()).with_pin_level();
    let serial = flow.run().unwrap();
    let pooled = flow.run_on(WorkerPool::global()).unwrap();
    assert_eq!(
        serial.report().to_string(),
        pooled.report().to_string(),
        "pooled flow report diverges from serial"
    );
    assert_eq!(serial.ccatb.output.sim_time, pooled.ccatb.output.sim_time);
    assert_eq!(
        serial.pin_accurate.as_ref().unwrap().output.sim_time,
        pooled.pin_accurate.as_ref().unwrap().output.sim_time
    );
}
