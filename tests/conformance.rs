//! Corpus regression suite: every shrunk reproduction checked into
//! `tests/corpus/` is replayed through the cross-level differential
//! checker and must produce exactly its recorded outcome — passes stay
//! passes, and each captured failure keeps failing with the same
//! classification. This pins down both the bugs the harness once found
//! and the replay path itself (JSON → model → four-level run).

use std::path::Path;

use shiptlm_testkit::prelude::*;

fn corpus_dir() -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/corpus")
}

#[test]
fn corpus_directory_is_present_and_parses() {
    let cases = CorpusCase::load_dir(&corpus_dir()).expect("corpus must parse");
    assert!(
        cases.len() >= 3,
        "expected the checked-in corpus, found {} case(s)",
        cases.len()
    );
    for (name, case) in &cases {
        assert!(!case.spec.motifs.is_empty(), "{name} has no motifs");
        // Every case's JSON form roundtrips through the parser.
        let text = case.to_json().to_string();
        let back = CorpusCase::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back.spec, case.spec, "{name} spec roundtrip");
        assert_eq!(back.expect, case.expect, "{name} expectation roundtrip");
    }
}

#[test]
fn corpus_cases_replay_with_their_recorded_outcome() {
    let cases = CorpusCase::load_dir(&corpus_dir()).expect("corpus must parse");
    assert!(!cases.is_empty());
    for (name, case) in cases {
        let mut cfg = CheckConfig::new(case.arch.clone());
        cfg.fault = case.fault.clone();
        let outcome = check_model(&case.spec, &cfg);
        match (case.expect, outcome) {
            (Expectation::Pass, Ok(report)) => {
                assert!(report.levels >= 3, "{name}: expected all levels to run");
            }
            (Expectation::Fail(kind), Err(failure)) => {
                assert_eq!(
                    failure.kind, kind,
                    "{name}: expected {kind:?}, got {failure}"
                );
            }
            (Expectation::Pass, Err(failure)) => {
                panic!("{name}: regression — recorded pass now fails: {failure}")
            }
            (Expectation::Fail(kind), Ok(_)) => {
                panic!("{name}: recorded {kind:?} failure now passes silently")
            }
        }
    }
}
