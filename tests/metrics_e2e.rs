//! End-to-end checks of the time-resolved metrics registry and host-time
//! profiler: instrumented layers must show up in the windowed series, the
//! exports must parse (via the `shiptlm-testkit` Prometheus/folded
//! parsers), windowed series must be bit-identical between serial and
//! parallel sweeps, and turning observability on must never perturb the
//! simulation itself.

use shiptlm::prelude::*;
use shiptlm_testkit::prelude::{parse_folded, PromKind, PromText};

// ---------------------------------------------------------------------------
// The quickstart producer/consumer topology.
// ---------------------------------------------------------------------------

fn quickstart_app(messages: u32) -> AppSpec {
    let mut app = AppSpec::new("quickstart");
    app.add_pe("producer", move || {
        Box::new(move |ctx, ports: Vec<ShipPort>| {
            for i in 0..messages {
                let payload: Vec<u8> = (0..64).map(|b| (b as u32 ^ i) as u8).collect();
                ports[0].send(ctx, &(i, payload)).unwrap();
            }
        })
    });
    app.add_pe("consumer", move || {
        Box::new(move |ctx, ports: Vec<ShipPort>| {
            for i in 0..messages {
                let (n, payload): (u32, Vec<u8>) = ports[0].recv(ctx).unwrap();
                assert_eq!(n, i);
                assert_eq!(payload.len(), 64);
            }
        })
    });
    app.connect("stream", "producer", "consumer");
    app
}

// ---------------------------------------------------------------------------
// Coverage: every instrumented layer reports series.
// ---------------------------------------------------------------------------

#[test]
fn metrics_cover_ship_bus_and_ocp_layers() {
    let run = DesignFlow::new(quickstart_app(16), ArchSpec::plb())
        .with_pin_level()
        .with_metrics(SimDur::us(1))
        .run()
        .unwrap();

    // Untimed reference: SHIP families only (no bus elaborated).
    let ca = run.component_assembly.output.metrics.as_ref().unwrap();
    assert_eq!(ca.counter_total("ship.messages", "stream"), 32); // 16 sends + 16 recvs
    assert!(ca.counter_total("ship.bytes", "stream") > 0);

    // CCATB: SHIP + bus + OCP all report against the same windows.
    let snap = run.ccatb.output.metrics.as_ref().unwrap();
    assert_eq!(snap.window, SimDur::us(1));
    let families: Vec<&str> = snap.series.iter().map(|s| s.family).collect();
    for family in [
        "ship.messages",
        "ship.bytes",
        "ship.blocked",
        "bus.txns",
        "bus.bytes",
        "bus.busy",
        "bus.queue_depth",
        "bus.grant_wait_ns",
        "ocp.txns",
        "ocp.bytes",
    ] {
        assert!(families.contains(&family), "{family} missing: {families:?}");
    }
    assert!(snap.counter_total("bus.txns", "plb") > 0);
    assert_eq!(
        snap.counter_total("bus.bytes", "plb"),
        snap.counter_total("ocp.bytes", "plb"),
        "every bus byte arrives through the OCP master port"
    );

    // Busy fractions are well-formed: in (0, 1] for a single bus.
    let fractions = snap.busy_fractions("bus.busy", "plb");
    assert!(!fractions.is_empty());
    for (start, f) in &fractions {
        assert!(
            *f > 0.0 && *f <= 1.0,
            "window at {start} has busy fraction {f}"
        );
    }

    // Pin-accurate runs instrument the same families through the accessors.
    let pin = run
        .pin_accurate
        .as_ref()
        .unwrap()
        .output
        .metrics
        .as_ref()
        .unwrap();
    assert!(pin.counter_total("bus.txns", "plb") > 0);
}

#[test]
fn partitioned_run_reports_doorbell_and_mailbox_series() {
    // A throttled producer, so the SW consumer actually blocks in the
    // driver (wait loops only count when they really wait).
    let mut app = AppSpec::new("throttled");
    app.add_pe("producer", || {
        Box::new(|ctx, ports: Vec<ShipPort>| {
            for i in 0..8u32 {
                ports[0].send(ctx, &i).unwrap();
                ctx.wait_for(SimDur::us(5));
            }
        })
    });
    app.add_pe("consumer", || {
        Box::new(|ctx, ports: Vec<ShipPort>| {
            for i in 0..8u32 {
                assert_eq!(ports[0].recv::<u32>(ctx).unwrap(), i);
            }
        })
    });
    app.connect("stream", "producer", "consumer");

    let ca = run_component_assembly(&app).unwrap();
    let opts = RunOptions::default().with_metrics(SimDur::us(1));
    let sw = run_partitioned_with(
        &app,
        &ca.roles,
        &ArchSpec::plb(),
        &Partition::software(["consumer"]),
        &opts,
    )
    .unwrap();

    let snap = sw.mapped.output.metrics.as_ref().expect("metrics enabled");
    let families: Vec<&str> = snap.series.iter().map(|s| s.family).collect();
    for family in ["hwsw.doorbells", "mbox.occupancy", "drv.doorbells"] {
        assert!(families.contains(&family), "{family} missing: {families:?}");
    }
    // Driver status waits show up as polls or IRQ waits, depending on the
    // synthesized notification mode.
    assert!(
        families.contains(&"drv.polls") || families.contains(&"drv.irq_waits"),
        "no driver wait series: {families:?}"
    );
}

// ---------------------------------------------------------------------------
// Export validation through the testkit parsers.
// ---------------------------------------------------------------------------

#[test]
fn prometheus_export_parses_and_declares_types() {
    let run = DesignFlow::new(quickstart_app(16), ArchSpec::plb())
        .with_metrics(SimDur::us(1))
        .run()
        .unwrap();
    let snap = run.ccatb.output.metrics.as_ref().unwrap();
    let text = snap.to_prometheus();
    let parsed = PromText::parse(&text).unwrap_or_else(|e| panic!("{e}\n---\n{text}"));

    // The 0.0.4 text format declares counters under their full sample name.
    assert_eq!(
        parsed.types.get("shiptlm_ship_messages_total"),
        Some(&PromKind::Counter)
    );
    assert_eq!(
        parsed.types.get("shiptlm_bus_queue_depth"),
        Some(&PromKind::Gauge)
    );
    assert_eq!(
        parsed.types.get("shiptlm_bus_grant_wait_ns"),
        Some(&PromKind::Histogram)
    );
    let msgs = parsed
        .sample("shiptlm_ship_messages_total", "resource", "stream")
        .expect("stream counter sample");
    assert_eq!(msgs.value, 32.0);

    // Histogram +Inf bucket equals its _count.
    let count = parsed
        .sample("shiptlm_bus_grant_wait_ns_count", "resource", "plb")
        .unwrap()
        .value;
    let inf = parsed
        .samples_named("shiptlm_bus_grant_wait_ns_bucket")
        .find(|s| s.label("resource") == Some("plb") && s.label("le") == Some("+Inf"))
        .unwrap()
        .value;
    assert_eq!(count, inf);
}

#[test]
fn profiler_folded_export_parses_and_nests_processes_under_evaluate() {
    let sim = Simulation::new();
    sim.enable_profiler();
    let channel = ShipChannel::new(&sim.handle(), "link", ShipConfig::default());
    let (tx, rx) = channel.ports("producer", "consumer");
    sim.spawn_thread("producer", move |ctx| {
        for i in 0..64u32 {
            tx.send(ctx, &i).unwrap();
        }
    });
    sim.spawn_thread("consumer", move |ctx| {
        for _ in 0..64u32 {
            rx.recv::<u32>(ctx).unwrap();
        }
    });
    sim.run();

    let profile = sim.host_profile();
    let stacks = parse_folded(&profile.to_folded()).unwrap();
    assert!(!stacks.is_empty());
    for s in &stacks {
        assert_eq!(s.frames[0], "kernel", "all stacks root at kernel: {s:?}");
    }
    assert!(
        stacks
            .iter()
            .any(|s| s.frames.len() == 3 && s.frames[1] == "evaluate"),
        "process dispatch frames missing: {stacks:?}"
    );
}

/// CI hook: when `SHIPTLM_METRICS_FILE` / `SHIPTLM_FOLDED_FILE` point at
/// artifacts written by the observability example, validate them with the
/// same parsers. A no-op in normal test runs.
#[test]
fn validates_artifacts_from_env() {
    if let Ok(path) = std::env::var("SHIPTLM_METRICS_FILE") {
        let text = std::fs::read_to_string(&path).unwrap();
        let parsed = PromText::parse(&text).unwrap_or_else(|e| panic!("{path}: {e}"));
        assert!(!parsed.samples.is_empty(), "{path} has no samples");
    }
    if let Ok(path) = std::env::var("SHIPTLM_FOLDED_FILE") {
        let text = std::fs::read_to_string(&path).unwrap();
        let stacks = parse_folded(&text).unwrap_or_else(|e| panic!("{path}: {e}"));
        assert!(!stacks.is_empty(), "{path} has no stacks");
    }
}

// ---------------------------------------------------------------------------
// Determinism: parallel sweeps and observability itself must be inert.
// ---------------------------------------------------------------------------

#[test]
fn parallel_sweep_series_are_identical_to_serial() {
    let archs = || {
        vec![
            ArchSpec::plb(),
            ArchSpec::opb(),
            ArchSpec::crossbar(),
            ArchSpec::plb().with_burst(64),
        ]
    };
    let run = |threads: usize| {
        Sweep::new(quickstart_app(12))
            .archs(archs())
            .with_metrics(SimDur::ns(500))
            .run_parallel(threads)
            .unwrap()
    };
    let serial = run(1);
    let two = run(2);
    let eight = run(8);
    for parallel in [&two, &eight] {
        assert_eq!(serial.rows().len(), parallel.rows().len());
        for (s, p) in serial.rows().iter().zip(parallel.rows()) {
            assert_eq!(s.label, p.label);
            assert_eq!(
                s.metrics, p.metrics,
                "windowed series diverged for '{}'",
                s.label
            );
        }
    }
    assert_eq!(serial.timeseries_csv(), eight.timeseries_csv());
}

#[test]
fn enabling_observability_does_not_perturb_the_simulation() {
    let base = DesignFlow::new(quickstart_app(16), ArchSpec::plb())
        .run()
        .unwrap();
    let observed = DesignFlow::new(quickstart_app(16), ArchSpec::plb())
        .with_recorder(65_536)
        .with_metrics(SimDur::us(1))
        .run()
        .unwrap();

    for (plain, instrumented) in [
        (
            &base.component_assembly.output,
            &observed.component_assembly.output,
        ),
        (&base.ccatb.output, &observed.ccatb.output),
    ] {
        plain
            .log
            .content_equivalent(&instrumented.log)
            .expect("same payload streams");
        assert_eq!(plain.sim_time, instrumented.sim_time);
        assert_eq!(plain.delta_cycles, instrumented.delta_cycles);
    }
}

#[test]
fn direct_backend_fires_trace_and_metrics_like_de() {
    // The direct backend must drive the same instrumentation as the DE
    // kernel: identical SHIP counter totals and transaction-span counts.
    let run = |backend| {
        run_component_assembly_with(
            &quickstart_app(16),
            &RunOptions::with_recorder(65_536)
                .with_metrics(SimDur::us(1))
                .with_backend(backend),
        )
        .unwrap()
    };
    let de = run(Backend::De);
    let fast = run(Backend::Direct);
    assert_eq!(fast.backend.used, Backend::Direct);

    let (dm, fm) = (
        de.output.metrics.as_ref().unwrap(),
        fast.output.metrics.as_ref().unwrap(),
    );
    for family in ["ship.messages", "ship.bytes"] {
        assert_eq!(
            dm.counter_total(family, "stream"),
            fm.counter_total(family, "stream"),
            "{family} totals diverge between backends"
        );
    }
    assert_eq!(fm.counter_total("ship.messages", "stream"), 32);

    let (dt, ft) = (
        de.output.txn.as_ref().unwrap(),
        fast.output.txn.as_ref().unwrap(),
    );
    let (ds, fs) = (
        dt.resource_stats(TxnLevel::Ship, "stream").unwrap(),
        ft.resource_stats(TxnLevel::Ship, "stream").unwrap(),
    );
    assert_eq!(ds.count, fs.count, "span counts diverge between backends");
    assert_eq!(ds.errors, fs.errors);
    assert_eq!(ft.dropped(), 0);
}

#[test]
fn direct_backend_observability_is_inert() {
    // Recorder + metrics on or off, the direct path must deliver the same
    // payload streams and detect the same roles.
    let run = |opts: &RunOptions| run_component_assembly_with(&quickstart_app(16), opts).unwrap();
    let plain = run(&RunOptions::default().with_backend(Backend::Direct));
    let observed = run(&RunOptions::with_recorder(65_536)
        .with_metrics(SimDur::us(1))
        .with_backend(Backend::Direct));
    assert_eq!(plain.backend.used, Backend::Direct);
    assert_eq!(observed.backend.used, Backend::Direct);
    plain
        .output
        .log
        .content_equivalent(&observed.output.log)
        .expect("same payload streams");
    assert_eq!(plain.roles, observed.roles);
    assert!(plain.output.txn.is_none());
    assert!(observed.output.txn.is_some());
}

// ---------------------------------------------------------------------------
// CSV escaping (report exporters share the RFC-4180 helper).
// ---------------------------------------------------------------------------

#[test]
fn report_csv_exports_escape_embedded_commas_and_quotes() {
    let mut app = AppSpec::new("escapes");
    app.add_pe("producer", || {
        Box::new(|ctx, ports: Vec<ShipPort>| {
            for i in 0..4u32 {
                ports[0].send(ctx, &i).unwrap();
            }
        })
    });
    app.add_pe("consumer", || {
        Box::new(|ctx, ports: Vec<ShipPort>| {
            for _ in 0..4u32 {
                ports[0].recv::<u32>(ctx).unwrap();
            }
        })
    });
    // A channel name with a comma and a quote must not shift CSV columns.
    app.connect("stream,\"v2\"", "producer", "consumer");

    let report = Sweep::new(app)
        .arch(ArchSpec::plb())
        .with_metrics(SimDur::us(1))
        .run()
        .unwrap();

    let latency = report.channel_latency_csv();
    assert!(
        latency.contains("\"stream,\"\"v2\"\"\""),
        "channel column not escaped:\n{latency}"
    );
    // Every data row still has exactly 6 columns once quotes are honoured.
    for line in latency.lines().skip(1) {
        assert_eq!(csv_columns(line), 6, "bad row: {line}");
    }

    let series = report.timeseries_csv();
    assert!(!series.is_empty());
    for line in series.lines().skip(1) {
        assert_eq!(csv_columns(line), 9, "bad row: {line}");
    }
}

/// Counts RFC-4180 columns (commas outside quoted fields + 1).
fn csv_columns(line: &str) -> usize {
    let mut cols = 1;
    let mut in_quotes = false;
    for c in line.chars() {
        match c {
            '"' => in_quotes = !in_quotes,
            ',' if !in_quotes => cols += 1,
            _ => {}
        }
    }
    cols
}
