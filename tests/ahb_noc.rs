//! Arbitration stress suite for the AHB and mesh-NoC interconnect
//! families: SPLIT storms, wrap-burst address math, XY-routing
//! determinism across serial and parallel sweeps, and deadlock-freedom
//! of the mesh under hotspot traffic.

use std::sync::Arc;

use shiptlm::prelude::*;

/// Every master SPLITs simultaneously: eight masters hit a SPLIT-capable
/// slave in the same delta, so each one is parked, releases the bus, and
/// must be re-granted before its data phase. All transfers must complete
/// with the memory intact, and every transaction must have gone through
/// exactly one park/re-grant pair.
#[test]
fn split_storm_all_masters_complete() {
    const MASTERS: usize = 8;
    const TXNS: u64 = 4;
    const BYTES: usize = 64; // 16 beats on the 4-byte AHB data path

    let sim = Simulation::new();
    let mut bus = AhbBus::new(&sim.handle(), AhbConfig::ahb("ahb").with_split(true));
    let mem = Arc::new(Memory::new("ram", MASTERS * TXNS as usize * BYTES));
    bus.map_slave(0..(MASTERS * TXNS as usize * BYTES) as u64, mem.clone(), true);
    let bus = Arc::new(bus);

    for m in 0..MASTERS {
        let port = bus.master_port(MasterId(m));
        sim.spawn_thread(&format!("m{m}"), move |ctx| {
            for t in 0..TXNS {
                let base = (m as u64 * TXNS + t) * BYTES as u64;
                let data: Vec<u8> = (0..BYTES).map(|i| (m * 31 + i) as u8).collect();
                port.write(ctx, base, data).unwrap();
            }
        });
    }
    let result = sim.run();
    assert_eq!(result.reason, StopReason::Starved, "storm must drain");
    let diag = sim.diagnose();
    assert!(diag.blocked.is_empty(), "no master may stay parked: {diag}");
    assert!(!diag.has_cycle(), "{diag}");

    let stats = bus.stats();
    let ahb = bus.ahb_stats();
    assert_eq!(stats.transactions, MASTERS as u64 * TXNS);
    assert_eq!(
        ahb.splits,
        stats.transactions,
        "every transfer on a split bus must be parked exactly once"
    );
    assert_eq!(
        ahb.split_regrants, ahb.splits,
        "every SPLIT must be followed by a re-grant"
    );
    // With split slaves the bus is free during the off-bus access, so the
    // arbiter saw real contention: masters waited on the gate.
    assert!(stats.wait_cycles.count() > 0);

    // The storm didn't corrupt anything: each master's words landed.
    for m in 0..MASTERS {
        for t in 0..TXNS {
            let base = (m as u64 * TXNS + t) * BYTES as u64;
            let expected: Vec<u8> = (0..BYTES).map(|i| (m * 31 + i) as u8).collect();
            assert_eq!(mem.peek(base, BYTES), Some(expected), "m{m} txn {t}");
        }
    }
}

/// Wrapping-burst address sequences at power-of-two boundaries: the burst
/// wraps inside its `beats * width` aligned block, covers the block
/// exactly once, and classification follows the HBURST encoding.
#[test]
fn wrap_burst_address_math_at_boundaries() {
    // WRAP4 of 4-byte beats starting at 0x38: block is [0x30, 0x40).
    assert_eq!(wrap_addresses(0x38, 4, 4), vec![0x38, 0x3C, 0x30, 0x34]);
    // WRAP8 starting exactly on its boundary never actually wraps.
    assert_eq!(
        wrap_addresses(0x100, 8, 4),
        (0..8).map(|i| 0x100 + 4 * i).collect::<Vec<u64>>()
    );
    // WRAP16 straddling a 64-byte block at the top of a 4 KiB page stays
    // inside the block — it must NOT cross into the next page.
    let addrs = wrap_addresses(0xFF8, 16, 4);
    assert_eq!(addrs.len(), 16);
    assert_eq!(addrs[0], 0xFF8);
    assert!(
        addrs.iter().all(|a| (0xFC0..0x1000).contains(a)),
        "WRAP16 leaked out of its aligned block: {addrs:x?}"
    );
    let mut sorted = addrs.clone();
    sorted.sort_unstable();
    sorted.dedup();
    assert_eq!(sorted.len(), 16, "each beat address must be distinct");

    // HBURST classification.
    assert_eq!(burst_kind(1, true), AhbBurst::Single);
    assert_eq!(burst_kind(4, true), AhbBurst::Wrap4);
    assert_eq!(burst_kind(8, true), AhbBurst::Wrap8);
    assert_eq!(burst_kind(16, true), AhbBurst::Wrap16);
    assert_eq!(burst_kind(5, true), AhbBurst::Incr);
    assert_eq!(burst_kind(16, false), AhbBurst::Incr);
}

/// A long burst is chopped at the grant boundary (RETRY / early burst
/// termination) and re-arbitrated segment by segment, so a competing
/// master is never starved behind it.
#[test]
fn long_bursts_are_retried_at_the_grant_boundary() {
    let sim = Simulation::new();
    let mut bus = AhbBus::new(&sim.handle(), AhbConfig::ahb("ahb"));
    bus.map_slave(0..0x1000, Arc::new(Memory::new("ram", 0x1000)), true);
    let bus = Arc::new(bus);

    // 256 bytes = 64 beats = 4 grant segments of 16 beats each.
    let port = bus.master_port(MasterId(0));
    sim.spawn_thread("hog", move |ctx| {
        port.write(ctx, 0, vec![0xAA; 256]).unwrap();
    });
    let rival = bus.master_port(MasterId(1));
    sim.spawn_thread("rival", move |ctx| {
        for _ in 0..4 {
            rival.write(ctx, 0x800, vec![1, 2, 3, 4]).unwrap();
        }
    });
    assert_eq!(sim.run().reason, StopReason::Starved);

    let ahb = bus.ahb_stats();
    assert_eq!(
        ahb.retries, 3,
        "a 64-beat burst must re-arbitrate 3 times past the 16-beat grant"
    );
}

/// XY routing is a pure function of (source, destination): routes are
/// X-first then Y, their length is the Manhattan distance, and an 8-thread
/// parallel sweep over NoC architectures produces a byte-identical report
/// to the serial sweep.
#[test]
fn xy_routing_is_deterministic_across_serial_and_parallel_sweeps() {
    // Route shape, straight from the model.
    let sim = Simulation::new();
    let noc = MeshNoc::new(&sim.handle(), NocConfig::mesh("noc", 4, 4));
    assert_eq!(noc.route(1, 11), vec![1, 2, 3, 7, 11]);
    assert_eq!(noc.route(12, 0), vec![12, 8, 4, 0]);
    assert_eq!(noc.route(5, 5), vec![5]);

    // Sweep determinism: the same NoC candidates through the serial and
    // the 8-thread pool paths must render the exact same report.
    let app = || workload::uniform_traffic(6, 4, 48, 0xD15C);
    let archs = vec![
        ArchSpec::noc(2, 2),
        ArchSpec::noc(4, 4),
        ArchSpec::noc(4, 2),
        ArchSpec::noc(4, 4).with_arb(ArbPolicy::FixedPriority),
        ArchSpec::noc(4, 4).with_clock(SimDur::ns(2)),
        ArchSpec::ahb(),
        ArchSpec::ahb().with_split(true),
        ArchSpec::plb(),
    ];
    let serial = Sweep::new(app()).archs(archs.clone()).run().expect("serial");
    let parallel = Sweep::new(app())
        .archs(archs)
        .run_parallel(8)
        .expect("parallel");
    assert_eq!(
        serial.to_string(),
        parallel.to_string(),
        "XY-routed sweep rows must not depend on worker scheduling"
    );
}

/// Hotspot traffic — every master hammering one ejection port — must
/// drain without a wait cycle: the XY mesh holds at most one link gate
/// per in-flight transfer, so `sim.diagnose()` finds nothing.
#[test]
fn mesh_is_deadlock_free_under_hotspot_traffic() {
    let sim = Simulation::new();
    let mut noc = MeshNoc::new(&sim.handle(), NocConfig::mesh("noc", 4, 4));
    let mem = Arc::new(Memory::new("hot", 0x1000).with_latency(SimDur::ns(20), SimDur::ns(5)));
    noc.map_slave_at(0..0x1000, mem, true, 0); // everyone ejects at node 0
    let noc = Arc::new(noc);

    for m in 0..16 {
        let port = noc.master_port(MasterId(m));
        sim.spawn_thread(&format!("pe{m}"), move |ctx| {
            for t in 0..4u64 {
                let base = (m as u64 * 4 + t) * 16 % 0x1000;
                port.write(ctx, base, vec![m as u8; 16]).unwrap();
                let _ = port.read(ctx, base, 16).unwrap();
            }
        });
    }
    let result = sim.run();
    assert_eq!(result.reason, StopReason::Starved, "hotspot must drain");
    let diag = sim.diagnose();
    assert!(!diag.has_cycle(), "XY routing must be deadlock-free: {diag}");
    assert!(diag.blocked.is_empty(), "{diag}");

    let stats = noc.stats();
    assert_eq!(stats.transactions, 16 * 8);
    assert!(noc.noc_stats().flits > 0);

    // The same pattern through the full mapped flow, end to end.
    let app = workload::hotspot_traffic(8, 6, 32, 75, 0x1107);
    let ca = run_component_assembly(&app).expect("untimed hotspot");
    let mapped = run_mapped(&app, &ca.roles, &ArchSpec::noc(4, 4)).expect("mapped hotspot");
    ca.output
        .log
        .content_equivalent(&mapped.output.log)
        .expect("hotspot content must survive the mesh");
}

/// The mesh scales to 16×16 (256 PEs): elaboration stays cheap, corner to
/// opposite-corner transfers take the Manhattan number of hops, and the
/// flit counters move.
#[test]
fn mesh_scales_to_16x16() {
    let sim = Simulation::new();
    let mut noc = MeshNoc::new(&sim.handle(), NocConfig::mesh("noc", 16, 16));
    assert_eq!(noc.config().nodes(), 256);
    let mem = Arc::new(Memory::new("far", 0x1000));
    noc.map_slave_at(0..0x1000, mem, true, 255); // bottom-right corner
    let noc = Arc::new(noc);

    // Corner-to-corner route is the full 30-hop Manhattan path.
    assert_eq!(noc.route(0, 255).len(), 31);

    for m in [0usize, 15, 240] {
        let port = noc.master_port(MasterId(m));
        sim.spawn_thread(&format!("pe{m}"), move |ctx| {
            port.write(ctx, (m as u64) * 8, vec![m as u8; 8]).unwrap();
        });
    }
    assert_eq!(sim.run().reason, StopReason::Starved);
    let stats = noc.noc_stats();
    assert!(stats.flits > 0);
    // Hops per transfer (links traversed plus the ejection port): node
    // 0 → 255 is 30+1, nodes 15 and 240 → 255 are 15+1 each; the mean
    // must sit exactly at 21.
    assert_eq!(stats.hops.count(), 3);
    assert!((stats.hops.mean() - 21.0).abs() < 1e-9, "{}", stats.hops.mean());
}

/// The traffic generators are pure functions of their seed: the same seed
/// produces identical per-PE request streams on the DE kernel and under
/// `Backend::Auto` (which compiles the untimed model for direct
/// execution), and a different seed produces different traffic.
#[test]
fn traffic_generators_are_deterministic_across_backends() {
    type Gen = fn(u64) -> AppSpec;
    let gens: [(&str, Gen); 3] = [
        ("uniform", |s| workload::uniform_traffic(6, 5, 40, s)),
        ("hotspot", |s| workload::hotspot_traffic(6, 5, 40, 80, s)),
        ("bursty", |s| workload::bursty_traffic(6, 8, 40, 4, s)),
    ];
    for (name, gen) in gens {
        let de = run_component_assembly_with(
            &gen(7),
            &RunOptions::default().with_backend(Backend::De),
        )
        .unwrap_or_else(|e| panic!("{name} DE run: {e}"));
        let auto = run_component_assembly_with(
            &gen(7),
            &RunOptions::default().with_backend(Backend::Auto),
        )
        .unwrap_or_else(|e| panic!("{name} auto run: {e}"));
        assert_eq!(
            auto.backend.used,
            Backend::Direct,
            "{name} traffic is untimed and must qualify for direct execution"
        );
        de.output
            .log
            .content_equivalent(&auto.output.log)
            .unwrap_or_else(|e| panic!("{name}: same seed must match across backends: {e}"));

        // A different seed reshuffles destinations and payloads.
        let other = run_component_assembly_with(
            &gen(8),
            &RunOptions::default().with_backend(Backend::De),
        )
        .unwrap_or_else(|e| panic!("{name} reseeded run: {e}"));
        assert!(
            de.output.log.content_equivalent(&other.output.log).is_err(),
            "{name}: different seeds must produce different traffic"
        );
    }
}
