//! Performance regression guard for the E1 claim ("very high simulation
//! speeds become feasible"): the abstraction ladder must keep its cost
//! ordering — untimed ≪ CCATB ≪ pin-accurate.
//!
//! Kernel delta cycles are the primary, fully deterministic proxy for host
//! cost (each delta is a scheduler round trip); a very generous wall-clock
//! assertion backs it up without inviting flakes on loaded CI runners.

use shiptlm::prelude::*;

fn the_app() -> AppSpec {
    workload::pipeline(6, 16, 256, SimDur::ZERO)
}

#[test]
fn abstraction_ladder_keeps_its_cost_ordering() {
    let app = the_app();
    let ca = run_component_assembly(&app).expect("untimed run");
    let ccatb = run_mapped(&app, &ca.roles, &ArchSpec::plb()).expect("ccatb run");
    let pin = run_pin_accurate(&app, &ca.roles, &ArchSpec::plb()).expect("pin run");

    let ca_deltas = ca.output.delta_cycles;
    let ccatb_deltas = ccatb.output.delta_cycles;
    let pin_deltas = pin.output.delta_cycles;

    // Deterministic ordering: each refinement step must cost markedly more
    // scheduler work than the last (measured ratios are ~35x and ~15x; the
    // guard only demands 2x so legitimate timing-model changes don't trip it).
    assert!(
        ccatb_deltas > ca_deltas.max(1) * 2,
        "CCATB ({ccatb_deltas} deltas) should cost well over the untimed model ({ca_deltas})"
    );
    assert!(
        pin_deltas > ccatb_deltas * 2,
        "pin-accurate ({pin_deltas} deltas) should cost well over CCATB ({ccatb_deltas})"
    );

    // All three levels still deliver the same content.
    ca.output
        .log
        .content_equivalent(&ccatb.output.log)
        .expect("ccatb content-equivalent to untimed");
    ca.output
        .log
        .content_equivalent(&pin.output.log)
        .expect("pin content-equivalent to untimed");

    // Generous wall-clock backstop: the untimed model runs hundreds of times
    // faster than the pin-accurate one, so even a heavily loaded runner
    // leaves a wide margin around this 2x bound.
    assert!(
        ca.output.wall_seconds <= pin.output.wall_seconds * 2.0,
        "untimed run ({:.4}s) should not be slower than 2x the pin-accurate run ({:.4}s)",
        ca.output.wall_seconds,
        pin.output.wall_seconds
    );
}

#[test]
fn sweep_throughput_stays_interactive() {
    // A whole 8-candidate sweep of a small workload must stay interactive
    // (E2: "fast ... exploration"). The bound is enormous relative to the
    // measured cost (tens of milliseconds in release builds) so it only
    // catches order-of-magnitude regressions, not scheduler noise.
    let app = workload::parallel_streams(3, 12, 256);
    let archs = vec![
        ArchSpec::plb(),
        ArchSpec::plb().with_burst(16),
        ArchSpec::plb().with_burst(128),
        ArchSpec::opb(),
        ArchSpec::opb().with_burst(16),
        ArchSpec::crossbar(),
        ArchSpec::crossbar().with_burst(16),
        ArchSpec::crossbar().with_burst(128),
    ];
    let t0 = std::time::Instant::now();
    let report = Sweep::new(app).archs(archs).run().expect("sweep");
    let elapsed = t0.elapsed();
    assert_eq!(report.rows().len(), 8);
    assert!(
        elapsed < std::time::Duration::from_secs(60),
        "8-candidate sweep took {elapsed:?} — exploration is no longer interactive"
    );
}
