//! Performance regression guard for the E1 claim ("very high simulation
//! speeds become feasible"): the abstraction ladder must keep its cost
//! ordering — untimed ≪ CCATB ≪ pin-accurate.
//!
//! Kernel delta cycles are the primary, fully deterministic proxy for host
//! cost (each delta is a scheduler round trip); a very generous wall-clock
//! assertion backs it up without inviting flakes on loaded CI runners.

use shiptlm::prelude::*;

fn the_app() -> AppSpec {
    workload::pipeline(6, 16, 256, SimDur::ZERO)
}

#[test]
fn abstraction_ladder_keeps_its_cost_ordering() {
    let app = the_app();
    let ca = run_component_assembly(&app).expect("untimed run");
    let ccatb = run_mapped(&app, &ca.roles, &ArchSpec::plb()).expect("ccatb run");
    let pin = run_pin_accurate(&app, &ca.roles, &ArchSpec::plb()).expect("pin run");

    let ca_deltas = ca.output.delta_cycles;
    let ccatb_deltas = ccatb.output.delta_cycles;
    let pin_deltas = pin.output.delta_cycles;

    // Deterministic ordering: each refinement step must cost markedly more
    // scheduler work than the last (measured ratios are ~35x and ~15x; the
    // guard only demands 2x so legitimate timing-model changes don't trip it).
    assert!(
        ccatb_deltas > ca_deltas.max(1) * 2,
        "CCATB ({ccatb_deltas} deltas) should cost well over the untimed model ({ca_deltas})"
    );
    assert!(
        pin_deltas > ccatb_deltas * 2,
        "pin-accurate ({pin_deltas} deltas) should cost well over CCATB ({ccatb_deltas})"
    );

    // All three levels still deliver the same content.
    ca.output
        .log
        .content_equivalent(&ccatb.output.log)
        .expect("ccatb content-equivalent to untimed");
    ca.output
        .log
        .content_equivalent(&pin.output.log)
        .expect("pin content-equivalent to untimed");

    // Generous wall-clock backstop: the untimed model runs hundreds of times
    // faster than the pin-accurate one, so even a heavily loaded runner
    // leaves a wide margin around this 2x bound.
    assert!(
        ca.output.wall_seconds <= pin.output.wall_seconds * 2.0,
        "untimed run ({:.4}s) should not be slower than 2x the pin-accurate run ({:.4}s)",
        ca.output.wall_seconds,
        pin.output.wall_seconds
    );
}

#[test]
fn ahb_model_keeps_untimed_far_cheaper_than_ccatb() {
    // Same E1 ordering for the AHB family: SPLIT/RETRY add arbitration
    // round trips on top of the plain shared bus, so the untimed model
    // must stay far cheaper than the AHB CCATB — and content-identical.
    let app = workload::uniform_traffic(6, 8, 128, 0xE1);
    let ca = run_component_assembly(&app).expect("untimed run");
    let ahb = run_mapped(&app, &ca.roles, &ArchSpec::ahb().with_split(true)).expect("ahb run");

    let ca_deltas = ca.output.delta_cycles;
    let ahb_deltas = ahb.output.delta_cycles;
    assert!(
        ahb_deltas > ca_deltas.max(1) * 2,
        "AHB CCATB ({ahb_deltas} deltas) should cost well over the untimed model ({ca_deltas})"
    );
    ca.output
        .log
        .content_equivalent(&ahb.output.log)
        .expect("AHB CCATB content-equivalent to untimed");
}

#[test]
fn sweep_throughput_stays_interactive() {
    // A whole 8-candidate sweep of a small workload must stay interactive
    // (E2: "fast ... exploration"). The bound is enormous relative to the
    // measured cost (tens of milliseconds in release builds) so it only
    // catches order-of-magnitude regressions, not scheduler noise.
    let app = workload::parallel_streams(3, 12, 256);
    let archs = vec![
        ArchSpec::plb(),
        ArchSpec::plb().with_burst(16),
        ArchSpec::plb().with_burst(128),
        ArchSpec::opb(),
        ArchSpec::opb().with_burst(16),
        ArchSpec::crossbar(),
        ArchSpec::crossbar().with_burst(16),
        ArchSpec::crossbar().with_burst(128),
    ];
    let t0 = std::time::Instant::now();
    let report = Sweep::new(app).archs(archs).run().expect("sweep");
    let elapsed = t0.elapsed();
    assert_eq!(report.rows().len(), 8);
    assert!(
        elapsed < std::time::Duration::from_secs(60),
        "8-candidate sweep took {elapsed:?} — exploration is no longer interactive"
    );
}

#[test]
fn direct_backend_beats_de_kernel_on_untimed_pipeline() {
    // ROADMAP-2 guard: the compiled direct-execution backend must beat the
    // delta-cycle kernel on the untimed pipeline in end-to-end msgs/host-sec.
    // Timing is external (`Instant` around the whole call) because that is
    // what a sweep pays: it includes elaboration, thread spawn and teardown,
    // not just the portion a backend chooses to count in `wall_seconds`.
    //
    // Like `large_sweep_parallel_beats_serial`, the bound is tiered by host
    // cores: the direct backend's free-running threads only show their full
    // advantage when they can actually run in parallel, while the DE kernel
    // serializes every rendezvous through the scheduler regardless. On a
    // single core the tier flips to "not much slower" — what it pins there
    // is that the direct path never *regresses* exploration throughput.
    let app = || workload::pipeline(6, 64, 256, SimDur::ZERO);
    let time_backend = |backend: Backend| {
        let opts = RunOptions::default().with_backend(backend);
        // Warm-up run, also the correctness probe: the requested backend
        // must actually be used, and content must match the DE reference.
        let probe = run_component_assembly_with(&app(), &opts).expect("probe run");
        assert_eq!(probe.backend.used, backend, "probe fell back");
        assert!(!probe.output.log.is_empty());
        let iters = 8;
        let t0 = std::time::Instant::now();
        for _ in 0..iters {
            run_component_assembly_with(&app(), &opts).expect("timed run");
        }
        (t0.elapsed() / iters, probe)
    };

    let (de_time, de) = time_backend(Backend::De);
    let (direct_time, direct) = time_backend(Backend::Direct);
    direct
        .output
        .log
        .content_equivalent(&de.output.log)
        .expect("direct backend must stay content-equivalent to the DE kernel");

    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let min_speedup = match cores {
        n if n >= 8 => 5.0,
        n if n >= 4 => 2.0,
        2 | 3 => 1.2,
        _ => 1.0 / 1.35,
    };
    let speedup = de_time.as_secs_f64() / direct_time.as_secs_f64();
    assert!(
        speedup >= min_speedup,
        "untimed pipeline: DE kernel {de_time:?}/run, direct backend {direct_time:?}/run \
         (speedup {speedup:.2}x, required {min_speedup:.2}x on {cores} cores)"
    );
}

#[test]
fn large_sweep_parallel_beats_serial() {
    // The ROADMAP-1 scaling guard: on a 1k-candidate sweep the 8-thread
    // persistent-pool path must beat the serial path by a margin that grows
    // with the cores actually available. The margins are conservative
    // (measured speedups are well above them) so scheduler noise on loaded
    // CI runners does not flake the build; what they pin down is the *bug*
    // this guard was written against — a parallel sweep that is SLOWER than
    // serial because per-sweep thread churn dominates cheap candidates.
    let archs = ArchGrid::exploration_default().generate_n(1024);
    let app = || workload::parallel_streams(2, 4, 64);

    // Warm up the global pool and the allocator so neither run pays
    // first-use costs the other doesn't.
    Sweep::new(app())
        .archs(archs.iter().take(32).cloned().collect::<Vec<_>>())
        .run_parallel(8)
        .expect("warm-up sweep");

    let t0 = std::time::Instant::now();
    let serial = Sweep::new(app())
        .archs(archs.clone())
        .run()
        .expect("serial");
    let serial_time = t0.elapsed();

    let t0 = std::time::Instant::now();
    let parallel = Sweep::new(app())
        .archs(archs)
        .run_parallel(8)
        .expect("parallel");
    let parallel_time = t0.elapsed();

    assert_eq!(serial.rows().len(), 1024);
    assert_eq!(parallel.rows().len(), 1024);
    assert_eq!(
        serial.to_string(),
        parallel.to_string(),
        "parallel report must stay byte-identical to serial"
    );

    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    // Required speedup (serial_time / parallel_time), scaled to the host:
    // ≥ 8 cores must show real scaling; a single-core host can only show
    // that pool overhead is small, so the bound flips to "not much slower".
    let min_speedup = match cores {
        n if n >= 8 => 2.5,
        n if n >= 4 => 1.8,
        2 | 3 => 1.2,
        _ => 1.0 / 1.35,
    };
    let speedup = serial_time.as_secs_f64() / parallel_time.as_secs_f64();
    assert!(
        speedup >= min_speedup,
        "1024-candidate sweep: serial {serial_time:?}, 8 threads {parallel_time:?} \
         (speedup {speedup:.2}x, required {min_speedup:.2}x on {cores} cores)"
    );
}
