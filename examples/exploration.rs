//! Full communication-architecture exploration sweep: four workload shapes
//! × {PLB, OPB, crossbar} × {priority, round-robin, TDMA} × burst size,
//! printing one report table per workload — the paper's "fast communication
//! architecture exploration" in action. Candidate simulations fan out over
//! worker threads (`Sweep::run_parallel`); the serial-vs-parallel wall-clock
//! comparison is printed first.
//!
//! Run with `cargo run --release --example exploration`.

use std::time::Instant;

use shiptlm::prelude::*;

fn candidates() -> Vec<ArchSpec> {
    let mut v = Vec::new();
    for burst in [16, 64] {
        v.push(ArchSpec::plb().with_burst(burst));
        v.push(
            ArchSpec::plb()
                .with_arb(ArbPolicy::RoundRobin)
                .with_burst(burst),
        );
        v.push(ArchSpec::opb().with_burst(burst));
        v.push(ArchSpec::crossbar().with_burst(burst));
    }
    v.push(ArchSpec::plb().with_arb(ArbPolicy::Tdma {
        slot: SimDur::us(2),
        slots: 4,
    }));
    v
}

fn main() {
    let started = Instant::now();
    let threads = std::thread::available_parallelism().map_or(2, |n| n.get());

    // Serial vs parallel on one workload first: same report, less wall-clock.
    let racing = || workload::parallel_streams(4, 24, 256);
    let t0 = Instant::now();
    let serial = Sweep::new(racing()).archs(candidates()).run().unwrap();
    let serial_s = t0.elapsed().as_secs_f64();
    let t0 = Instant::now();
    let parallel = Sweep::new(racing())
        .archs(candidates())
        .run_parallel(threads)
        .unwrap();
    let parallel_s = t0.elapsed().as_secs_f64();
    assert_eq!(
        serial.to_string(),
        parallel.to_string(),
        "parallel sweep must reproduce the serial report"
    );
    println!(
        "serial sweep {serial_s:.3}s, parallel sweep ({threads} threads) {parallel_s:.3}s \
         — {:.2}x speedup, identical report\n",
        serial_s / parallel_s.max(1e-9)
    );

    let workloads: Vec<(&str, AppSpec)> = vec![
        (
            "pipeline (4 stages, 32×512B)",
            workload::pipeline(4, 32, 512, SimDur::us(1)),
        ),
        (
            "parallel streams (4×24×256B)",
            workload::parallel_streams(4, 24, 256),
        ),
        (
            "rpc offload (2 clients, 16×128B)",
            workload::rpc(2, 16, 128, SimDur::us(2)),
        ),
        (
            "hotspot (3 asymmetric producers)",
            workload::hotspot(3, 8, 256),
        ),
    ];

    let n_archs = candidates().len();
    let mut configs = 0;
    for (name, app) in workloads {
        println!("== {name} ==");
        let report = Sweep::new(app)
            .with_untimed_baseline()
            .archs(candidates())
            .run_parallel(threads)
            .expect("role detection");
        println!("{report}");
        let front = report_front(&report);
        println!(
            "pareto front (min time, min wait): {}\n",
            front
                .iter()
                .map(|r| r.label.as_str())
                .collect::<Vec<_>>()
                .join(", ")
        );
        configs += n_archs;
    }
    println!(
        "explored {configs} architecture configurations in {:.2}s of host time",
        started.elapsed().as_secs_f64()
    );
}
