//! Quickstart: a producer/consumer application taken through the whole
//! design flow — component-assembly → CCATB (PLB) → pin-accurate — with
//! automatic master/slave detection and cross-level equivalence checking.
//!
//! Run with `cargo run --example quickstart`. Set `SHIPTLM_TRACE_OUT=t.json`
//! to also export the CCATB run's transaction-level trace as Chrome
//! `trace_event` JSON (load it at <https://ui.perfetto.dev>).

use shiptlm::prelude::*;

fn main() -> Result<(), FlowError> {
    // 1. Describe the application: PEs + SHIP channels, no architecture yet.
    let mut app = AppSpec::new("quickstart");
    app.add_pe("producer", || {
        Box::new(|ctx, ports: Vec<ShipPort>| {
            for i in 0..32u32 {
                let payload: Vec<u8> = (0..64).map(|b| (b as u32 ^ i) as u8).collect();
                ports[0].send(ctx, &(i, payload)).unwrap();
            }
        })
    });
    app.add_pe("consumer", || {
        Box::new(|ctx, ports: Vec<ShipPort>| {
            for i in 0..32u32 {
                let (n, payload): (u32, Vec<u8>) = ports[0].recv(ctx).unwrap();
                assert_eq!(n, i);
                assert_eq!(payload.len(), 64);
            }
        })
    });
    app.connect("stream", "producer", "consumer");

    // 2. Run the flow against a CoreConnect-PLB-like architecture, with the
    //    transaction recorder capturing SHIP/bus/OCP events at every level.
    let run = DesignFlow::new(app, ArchSpec::plb())
        .with_pin_level()
        .with_recorder(65_536)
        .run()?;

    // 3. Inspect what the flow derived and measured.
    println!(
        "detected roles: {:?}",
        run.component_assembly.roles.master_of
    );
    println!();
    println!("{}", run.report());
    println!(
        "ccatb bus: {} transactions, mean latency {:.1} cycles, mean wait {:.1} cycles",
        run.ccatb.bus.transactions,
        run.ccatb.bus.latency_cycles.mean(),
        run.ccatb.bus.wait_cycles.mean(),
    );
    let pin = run.pin_accurate.as_ref().expect("pin level was requested");
    println!(
        "pin-accurate model: {} vs ccatb {} simulated ({}x slower), {} vs {} delta cycles",
        pin.output.sim_time,
        run.ccatb.output.sim_time,
        pin.output.sim_time.as_ps() / run.ccatb.output.sim_time.as_ps().max(1),
        pin.output.delta_cycles,
        run.ccatb.output.delta_cycles,
    );
    println!("all levels content-equivalent ✓");

    // 4. Per-channel blocking latency and the transaction-level trace.
    let trace = run.ccatb.output.txn.as_ref().expect("recorder was enabled");
    println!();
    println!("ccatb transaction trace: {trace}");
    for ((level, resource), s) in trace.stats() {
        println!(
            "  [{level}] {resource}: {} txns, latency {:.1}..{:.1} ns (mean {:.1})",
            s.count,
            s.latency_ns.min().unwrap_or(0.0),
            s.latency_ns.max().unwrap_or(0.0),
            s.latency_ns.mean(),
        );
    }
    if let Ok(path) = std::env::var("SHIPTLM_TRACE_OUT") {
        trace
            .write_chrome(&path)
            .expect("failed to write Chrome trace");
        println!("wrote Chrome trace to {path}");
    }
    Ok(())
}
