//! Crypto offload across the HW/SW boundary (paper §4): a software control
//! task on the RTOS hands cipher blocks to a hardware accelerator through
//! the generic SHIP HW/SW interface — device driver + communication library
//! on the SW side, mailbox adapter + sideband interrupt on the HW side.
//!
//! The control PE's source is written **once** and executed twice: first as
//! hardware (both PEs on the bus), then as embedded software — demonstrating
//! "fully transaction-based HW/SW communication … without requiring any
//! changes to the source code".
//!
//! Run with `cargo run --example crypto_offload`.

use shiptlm::prelude::*;

const BLOCKS: u32 = 24;
const BLOCK_BYTES: usize = 256;

/// A toy XTEA-ish block transform, the accelerator's job.
fn cipher(data: &[u8], key: u32) -> Vec<u8> {
    let mut out = data.to_vec();
    let mut sum = key;
    for chunk in out.chunks_mut(4) {
        sum = sum.wrapping_mul(0x9E37_79B9).wrapping_add(0x7F4A_7C15);
        for (k, b) in chunk.iter_mut().enumerate() {
            *b ^= (sum >> (8 * k)) as u8;
        }
    }
    out
}

fn build_app() -> AppSpec {
    let mut app = AppSpec::new("crypto_offload");
    // Control PE: sends plaintext, expects ciphertext back (RPC).
    app.add_pe("control", || {
        Box::new(|ctx, ports: Vec<ShipPort>| {
            for i in 0..BLOCKS {
                let plain: Vec<u8> = (0..BLOCK_BYTES).map(|k| (k as u32 ^ i) as u8).collect();
                let expected = cipher(&plain, 0xC0FF_EE00 | i);
                let encrypted: Vec<u8> = ports[0].request(ctx, &(i, plain)).unwrap();
                assert_eq!(encrypted, expected, "block {i} mismatch");
            }
        })
    });
    // Accelerator PE: hardware cipher engine with a fixed per-block latency.
    app.add_pe("aes_engine", || {
        Box::new(|ctx, ports: Vec<ShipPort>| {
            for _ in 0..BLOCKS {
                let (i, plain): (u32, Vec<u8>) = ports[0].recv(ctx).unwrap();
                ctx.wait_for(SimDur::us(3)); // pipeline latency
                ports[0]
                    .reply(ctx, &cipher(&plain, 0xC0FF_EE00 | i))
                    .unwrap();
            }
        })
    });
    app.connect("ctl2aes", "control", "aes_engine");
    app
}

fn main() {
    let app = build_app();
    let arch = ArchSpec::plb();
    let ca = run_component_assembly(&app).expect("role detection");
    println!(
        "roles: {:?}  (control is the master — detected, not declared)\n",
        ca.roles.master_of
    );

    // (a) Pure hardware: both PEs behind SHIP↔OCP wrappers on the PLB.
    let hw = run_mapped(&app, &ca.roles, &arch).expect("roles cover all channels");

    // (b) HW/SW: control becomes an eSW task; same source, driver-backed
    //     ports, polling every 500 ns.
    let partition = Partition::software(["control"]).with_poll_interval(SimDur::ns(500));
    let sw = run_partitioned(&app, &ca.roles, &arch, &partition).expect("partition");

    println!(
        "{:<28} {:>14} {:>12} {:>12}",
        "configuration", "sim time", "bus txns", "ctx sw"
    );
    println!("{}", "-".repeat(70));
    println!(
        "{:<28} {:>14} {:>12} {:>12}",
        "HW control + HW engine",
        hw.output.sim_time.to_string(),
        hw.bus.transactions,
        "-"
    );
    println!(
        "{:<28} {:>14} {:>12} {:>12}",
        "eSW control + HW engine",
        sw.mapped.output.sim_time.to_string(),
        sw.mapped.bus.transactions,
        sw.rtos.ctx_switches
    );

    let overhead =
        sw.mapped.output.sim_time.as_ps() as f64 / hw.output.sim_time.as_ps().max(1) as f64;
    println!("\nHW/SW interface overhead: {overhead:.2}x the pure-HW mapping");

    ca.output
        .log
        .content_equivalent(&hw.output.log)
        .expect("HW mapping equivalent");
    ca.output
        .log
        .content_equivalent(&sw.mapped.output.log)
        .expect("HW/SW mapping equivalent");
    println!("both partitions content-equivalent to the untimed reference ✓");
    println!("(the control PE source was not modified between runs)");
}
