//! A JPEG-style compression pipeline (DCT → quantize → run-length pack)
//! explored over several candidate communication architectures.
//!
//! The application is the kind of multimedia workload the paper's flow
//! targets: block-based dataflow with bulk transfers. Each PE is written
//! once against SHIP ports; the sweep maps the channels onto PLB, OPB and a
//! crossbar with different burst sizes and reports throughput, utilization
//! and latency.
//!
//! Run with `cargo run --example jpeg_pipeline`.

use shiptlm::prelude::*;

const BLOCKS: u32 = 48;
const DIM: usize = 8;

/// An 8×8 "image block" with deterministic content.
fn source_block(i: u32) -> Vec<i16> {
    (0..DIM * DIM)
        .map(|k| (((k as u32 * 7 + i * 13) % 255) as i16) - 128)
        .collect()
}

/// A toy 2-D transform standing in for the DCT (separable weighted sums).
fn dct_ish(block: &[i16]) -> Vec<i32> {
    let mut out = vec![0i32; DIM * DIM];
    for (u, row) in out.chunks_mut(DIM).enumerate() {
        for (v, cell) in row.iter_mut().enumerate() {
            let mut acc = 0i32;
            for x in 0..DIM {
                for y in 0..DIM {
                    let w = ((u * x + v * y) % 7) as i32 - 3;
                    acc += w * i32::from(block[x * DIM + y]);
                }
            }
            *cell = acc >> 4;
        }
    }
    out
}

fn quantize(c: &[i32]) -> Vec<i16> {
    c.iter()
        .enumerate()
        .map(|(k, v)| (v / (8 + k as i32)) as i16)
        .collect()
}

fn rle_pack(q: &[i16]) -> Vec<u8> {
    let mut out = Vec::new();
    let mut zeros = 0u8;
    for &v in q {
        if v == 0 && zeros < u8::MAX {
            zeros += 1;
        } else {
            out.push(zeros);
            out.extend_from_slice(&v.to_le_bytes());
            zeros = 0;
        }
    }
    out.push(zeros);
    out
}

fn build_app() -> AppSpec {
    let mut app = AppSpec::new("jpeg_pipeline");
    app.add_pe("camera", || {
        Box::new(|ctx, ports: Vec<ShipPort>| {
            for i in 0..BLOCKS {
                ports[0].send(ctx, &source_block(i)).unwrap();
            }
        })
    });
    app.add_pe("dct", || {
        Box::new(|ctx, ports: Vec<ShipPort>| {
            for _ in 0..BLOCKS {
                let block: Vec<i16> = ports[0].recv(ctx).unwrap();
                ctx.wait_for(SimDur::us(2)); // transform latency
                ports[1].send(ctx, &dct_ish(&block)).unwrap();
            }
        })
    });
    app.add_pe("quant", || {
        Box::new(|ctx, ports: Vec<ShipPort>| {
            for _ in 0..BLOCKS {
                let coeffs: Vec<i32> = ports[0].recv(ctx).unwrap();
                ctx.wait_for(SimDur::ns(500));
                ports[1].send(ctx, &quantize(&coeffs)).unwrap();
            }
        })
    });
    app.add_pe("packer", || {
        Box::new(|ctx, ports: Vec<ShipPort>| {
            let mut total = 0usize;
            for _ in 0..BLOCKS {
                let q: Vec<i16> = ports[0].recv(ctx).unwrap();
                total += rle_pack(&q).len();
            }
            assert!(total > 0);
        })
    });
    app.connect("cam2dct", "camera", "dct");
    app.connect("dct2q", "dct", "quant");
    app.connect("q2pack", "quant", "packer");
    app
}

fn main() {
    println!("exploring communication architectures for the JPEG-ish pipeline\n");
    let report = Sweep::new(build_app())
        .with_untimed_baseline()
        .arch(ArchSpec::plb())
        .arch(ArchSpec::plb().with_burst(16))
        .arch(ArchSpec::plb().with_arb(ArbPolicy::RoundRobin))
        .arch(ArchSpec::opb())
        .arch(ArchSpec::crossbar())
        .run()
        .expect("role detection");
    println!("{report}");

    // The refinement-correctness check across all candidates.
    verify_equivalence(
        &build_app(),
        &[ArchSpec::plb(), ArchSpec::opb(), ArchSpec::crossbar()],
    )
    .expect("all mappings content-equivalent");
    println!("all mapped runs content-equivalent to the untimed reference ✓");
}
