//! Observability demo: the time-resolved metrics registry and the
//! host-time profiler, over (1) a 13-configuration architecture sweep with
//! per-candidate windowed series and (2) a single profiled run.
//!
//! Run with `cargo run --release --example observability`. Optional env
//! vars write the exports to disk:
//!
//! * `SHIPTLM_METRICS_OUT=m.prom` — Prometheus text exposition of the
//!   profiled run's metric registry;
//! * `SHIPTLM_TIMESERIES_OUT=ts.csv` — the sweep's per-candidate windowed
//!   time series as CSV;
//! * `SHIPTLM_FOLDED_OUT=p.folded` — folded profiler stacks (feed to
//!   `flamegraph.pl` or <https://www.speedscope.app>).

use shiptlm::prelude::*;

/// 3 burst sizes × {PLB, PLB/round-robin, OPB, crossbar} + a TDMA PLB.
fn candidates() -> Vec<ArchSpec> {
    let mut v = Vec::new();
    for burst in [16, 64, 256] {
        v.push(ArchSpec::plb().with_burst(burst));
        v.push(
            ArchSpec::plb()
                .with_arb(ArbPolicy::RoundRobin)
                .with_burst(burst),
        );
        v.push(ArchSpec::opb().with_burst(burst));
        v.push(ArchSpec::crossbar().with_burst(burst));
    }
    v.push(ArchSpec::plb().with_arb(ArbPolicy::Tdma {
        slot: SimDur::us(2),
        slots: 4,
    }));
    v
}

fn write_out(var: &str, what: &str, content: &str) {
    if let Ok(path) = std::env::var(var) {
        std::fs::write(&path, content).unwrap_or_else(|e| panic!("writing {path}: {e}"));
        println!("wrote {what} to {path}");
    }
}

fn main() {
    let threads = std::thread::available_parallelism().map_or(2, |n| n.get());

    // ── 1. Sweep with the metrics registry on: bus utilization over time ──
    let archs = candidates();
    println!(
        "sweeping {} configurations with a {} sampling window…\n",
        archs.len(),
        SimDur::us(5),
    );
    let report = Sweep::new(workload::parallel_streams(4, 24, 256))
        .archs(archs)
        .with_metrics(SimDur::us(5))
        .run_parallel(threads)
        .expect("role detection");

    println!("bus utilization per 5 µs window (busy picoseconds / window);");
    println!("crossbar rows aggregate all output ports, so they can exceed 100%:");
    println!("{:<28} windows →", "config");
    for r in report.rows() {
        let Some(snap) = &r.metrics else { continue };
        // Every interconnect the candidate elaborated contributes a
        // `bus.busy` series; single-bus candidates have exactly one.
        for s in snap.series.iter().filter(|s| s.family == "bus.busy") {
            let fractions = snap.busy_fractions("bus.busy", &s.resource);
            let cells: Vec<String> = fractions
                .iter()
                .take(10)
                .map(|(_, f)| format!("{:>4.0}%", f * 100.0))
                .collect();
            let ellipsis = if fractions.len() > 10 { " …" } else { "" };
            println!(
                "{:<28} {}{}",
                format!("{} [{}]", r.label, s.resource),
                cells.join(" "),
                ellipsis
            );
        }
    }
    println!();
    write_out(
        "SHIPTLM_TIMESERIES_OUT",
        "per-candidate time series CSV",
        &report.timeseries_csv(),
    );

    // ── 2. One profiled run: registry + host-time profiler ──
    let sim = Simulation::new();
    sim.enable_metrics(SimDur::us(1));
    sim.enable_profiler();
    let cfg = ShipConfig {
        latency: SimDur::ns(200),
        per_byte: SimDur::ps(500),
        ..ShipConfig::default()
    };
    let channel = ShipChannel::new(&sim.handle(), "stream", cfg);
    let (tx, rx) = channel.ports("producer", "consumer");
    sim.spawn_thread("producer", move |ctx| {
        for i in 0..512u32 {
            let payload: Vec<u8> = (0..128).map(|b| (b as u32 ^ i) as u8).collect();
            tx.send(ctx, &(i, payload)).unwrap();
            ctx.wait_for(SimDur::ns(50));
        }
    });
    sim.spawn_thread("consumer", move |ctx| {
        for _ in 0..512u32 {
            let (_, payload): (u32, Vec<u8>) = rx.recv(ctx).unwrap();
            assert_eq!(payload.len(), 128);
        }
    });
    sim.run();

    let snap = sim.metrics_snapshot();
    let profile = sim.host_profile();
    println!(
        "profiled run: {} messages, {} payload+header bytes on 'stream'",
        snap.counter_total("ship.messages", "stream"),
        snap.counter_total("ship.bytes", "stream"),
    );
    println!("host time by kernel phase ({:?} total):", profile.total());
    for (phase, stat) in &profile.phases {
        println!(
            "  {:<14} {:>10} ns over {} frames",
            phase, stat.nanos, stat.count
        );
    }
    for (proc_name, stat) in &profile.processes {
        println!(
            "  evaluate/{:<12} {:>10} ns over {} dispatches",
            proc_name, stat.nanos, stat.count
        );
    }

    write_out(
        "SHIPTLM_METRICS_OUT",
        "Prometheus exposition",
        &snap.to_prometheus(),
    );
    write_out(
        "SHIPTLM_FOLDED_OUT",
        "folded profiler stacks",
        &profile.to_folded(),
    );
}
