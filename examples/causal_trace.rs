//! End-to-end causal tracing walkthrough: start a gateway, submit one
//! traced sweep job with live progress, and export the merged
//! client → gateway → sweep → kernel span tree as Chrome/Perfetto JSON.
//!
//! The export lands at `$SHIPTLM_CAUSAL_OUT` (default
//! `causal_trace.json`); open it in <https://ui.perfetto.dev> or
//! `chrome://tracing`. Track 0 is the host wall clock; each candidate
//! architecture gets its own simulated-time track with the kernel's
//! transaction spans stitched underneath its `candidate` span.

use shiptlm::explore::prelude::*;
use shiptlm_gateway::prelude::*;
use shiptlm_testkit::model::{GenConfig, ModelSpec};

fn main() {
    let out =
        std::env::var("SHIPTLM_CAUSAL_OUT").unwrap_or_else(|_| "causal_trace.json".to_string());

    // A gateway as a client would see it: admission queue, executor
    // threads, content-addressed cache — all of which show up as spans.
    let gateway = Gateway::start(GatewayConfig::default()).expect("gateway start");
    let mut client = GatewayClient::connect(gateway.addr(), &BIN).expect("connect");

    // Live sweep introspection: progress frames stream at worker chunk
    // boundaries while the job runs.
    client.set_progress_handler(|p| {
        println!(
            "progress: {}/{} candidates done, {} pruned, ~{} simulated ps remaining",
            p.done, p.total, p.pruned, p.eta_hint_ps
        );
    });

    let req = JobRequest {
        id: 1,
        spec: ModelSpec::random(4242, &GenConfig::default()),
        archs: vec![
            ArchSpec::plb(),
            ArchSpec::opb().with_burst(16),
            ArchSpec::crossbar(),
        ],
        backend: BackendChoice::De,
        want_trace: false,
        trace: None,
        want_progress: true,
    };

    // `run_job_traced` mints the trace context, roots a client-side `job`
    // span, and merges every span the server streams back.
    let (outcome, trace) = client.run_job_traced(&req).expect("traced job");
    assert!(outcome.is_done(), "job ended {:?}", outcome.status);

    println!("{trace}");
    trace.write_chrome(&out).expect("write chrome json");
    println!(
        "wrote {} spans (trace ids {:?}) to {out}",
        trace.spans.len(),
        trace.trace_ids()
    );

    // Run the identical job again: the result cache answers, and the
    // replayed sweep spans appear under this request's own trace id.
    let (cached, replay) = client.run_job_traced(&req).expect("cached job");
    assert_eq!(cached.status, JobStatus::Done { cached: true });
    println!(
        "cache replay: {} spans under a fresh trace id {:?}",
        replay.spans.len(),
        replay.trace_ids()
    );

    gateway.shutdown();
    println!("causal trace OK");
}
